package govern

import (
	"errors"
	"testing"

	"repro/internal/kvpool"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// specFor returns a resolver sizing every lane to exactly blocks blocks of
// blockSize tokens over the tiny OPT shape.
func specFor(blocks, blockSize int) SpecResolver {
	m := model.Tiny(model.OPT)
	per := m.KVBytesPerTokenPerLayer(tensor.BF16) * int64(m.Layers) * int64(blockSize)
	return func(lane string) (PoolSpec, error) {
		return PoolSpec{Model: m, DType: tensor.BF16, BlockSize: blockSize,
			BudgetBytes: per * int64(blocks)}, nil
	}
}

func TestAdmitNeverFits(t *testing.T) {
	g := New(Config{Specs: specFor(4, 16), Registry: metrics.NewRegistry()})
	// 4 blocks × 16 tokens = 64-token capacity; a 100-token context can
	// never complete.
	if _, err := g.Admit("l", "c", 90, 10); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("Admit(100 tokens into 64-token pool) = %v, want ErrNeverFits", err)
	}
	// Exactly at capacity is admissible.
	lease, err := g.Admit("l", "c", 54, 10)
	if err != nil {
		t.Fatalf("Admit(64 tokens) failed: %v", err)
	}
	lease.Release()
}

func TestAdmitQuota(t *testing.T) {
	g := New(Config{Specs: specFor(64, 16), QuotaTokens: 100,
		Registry: metrics.NewRegistry()})
	first, err := g.Admit("l", "alice", 60, 20) // 80 in flight
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := g.Admit("l", "alice", 30, 10); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota admit = %v, want ErrQuotaExceeded", err)
	}
	// Quotas are per client: another tenant is unaffected.
	other, err := g.Admit("l", "bob", 30, 10)
	if err != nil {
		t.Fatalf("other client admit: %v", err)
	}
	other.Release()
	// Releasing refunds the charge, reopening headroom.
	first.Release()
	lease, err := g.Admit("l", "alice", 30, 10)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	lease.Release()
	first.Release() // idempotent: must not double-refund
	if _, err := g.Admit("l", "alice", 60, 40); err != nil {
		t.Fatalf("quota accounting drifted after double release: %v", err)
	}
}

func TestWatermarkHysteresis(t *testing.T) {
	g := New(Config{Specs: specFor(10, 16), HighWatermark: 0.8, LowWatermark: 0.4,
		Registry: metrics.NewRegistry()})
	hold, err := g.Admit("l", "c", 100, 28) // fits: 128 tokens = 8 blocks
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := hold.Reserve(128); err != nil { // 8 of 10 blocks: util 0.8
		t.Fatalf("reserve: %v", err)
	}
	if !g.Shedding() {
		t.Fatal("not shedding at util 0.8 with high watermark 0.8")
	}
	if _, err := g.Admit("l", "c2", 16, 16); !errors.Is(err, ErrShedding) {
		t.Fatalf("admit while shedding = %v, want ErrShedding", err)
	}
	// Hysteresis: recovery needs util <= low, and releasing everything
	// gets there.
	hold.Release()
	if g.Shedding() {
		t.Fatal("still shedding after pool drained below low watermark")
	}
	lease, err := g.Admit("l", "c2", 16, 16)
	if err != nil {
		t.Fatalf("admit after recovery: %v", err)
	}
	lease.Release()
}

func TestSetPressureShrinksAndRecovers(t *testing.T) {
	g := New(Config{Specs: specFor(10, 16), HighWatermark: 0.8, LowWatermark: 0.5,
		Registry: metrics.NewRegistry()})
	hold, err := g.Admit("l", "c", 48, 16) // 64 tokens = 4 blocks
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := hold.Reserve(64); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if g.Shedding() {
		t.Fatal("shedding at util 0.4")
	}
	// 80% pressure withholds 8 of 10 blocks: 4 used of 2 effective.
	g.SetPressure("l", 0.8)
	if !g.Shedding() {
		t.Fatal("not shedding with effective capacity below current usage")
	}
	st := g.Snapshot()
	if len(st.Lanes) != 1 || st.Lanes[0].EffectiveBlocks != 2 || !st.Lanes[0].Shedding {
		t.Fatalf("snapshot under pressure: %+v", st.Lanes)
	}
	// A grow beyond the effective cap must fail even with free blocks.
	if err := hold.Grow(64); !errors.Is(err, kvpool.ErrOutOfBlocks) {
		t.Fatalf("grow under pressure = %v, want ErrOutOfBlocks", err)
	}
	// Lifting the pressure recovers: util back to 4/10 <= 0.5.
	g.SetPressure("l", 0)
	if g.Shedding() {
		t.Fatal("still shedding after pressure lifted")
	}
	hold.Release()
	if st := g.Snapshot(); st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Fatalf("pool not fully free after release: %+v", st.Lanes[0])
	}
}

func TestLeasePreemptReleasesBlocksKeepsQuota(t *testing.T) {
	g := New(Config{Specs: specFor(8, 16), QuotaTokens: 200,
		Registry: metrics.NewRegistry()})
	lease, err := g.Admit("l", "c", 64, 36)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := lease.Reserve(64); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	lease.Preempt()
	if lease.Held() {
		t.Fatal("lease still holds blocks after preemption")
	}
	st := g.Snapshot()
	if st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Fatalf("blocks not returned on preempt: %+v", st.Lanes[0])
	}
	if st.Lanes[0].Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", st.Lanes[0].Preemptions)
	}
	// The quota charge survives preemption (the request is still live):
	// the client holds 100 of 200, so 120 more must be rejected.
	if _, err := g.Admit("l", "c", 100, 20); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota dropped across preemption: %v", err)
	}
	// Readmission re-reserves on the same lease.
	if err := lease.Reserve(64); err != nil {
		t.Fatalf("re-reserve after preempt: %v", err)
	}
	lease.Release()
	if _, ok := g.Snapshot().Clients["c"]; ok {
		t.Fatal("client quota entry not cleared after terminal release")
	}
}

func TestAdmitTokensByMode(t *testing.T) {
	opt := New(Config{Specs: specFor(8, 16), Registry: metrics.NewRegistry()})
	if got := opt.AdmitTokens(100, 28); got != 100 {
		t.Errorf("optimistic AdmitTokens = %d, want prompt-only 100", got)
	}
	cons := New(Config{Specs: specFor(8, 16), Conservative: true,
		Registry: metrics.NewRegistry()})
	if got := cons.AdmitTokens(100, 28); got != 128 {
		t.Errorf("conservative AdmitTokens = %d, want full context 128", got)
	}
	var nilGov *Governor
	if nilGov.Conservative() || nilGov.Shedding() {
		t.Error("nil governor must report no mode and no shedding")
	}
	if lease, err := nilGov.Admit("l", "c", 1, 1); lease != nil || err != nil {
		t.Errorf("nil governor Admit = (%v, %v), want (nil, nil)", lease, err)
	}
}
