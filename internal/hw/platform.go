// Package hw describes the evaluation platforms of the paper: the two CPU
// servers of Table I (Xeon 8352Y "ICL" and Xeon Max 9468 "SPR") and the two
// GPU servers of Table II (A100-40GB, H100-80GB), together with the
// calibrated efficiency curves the performance model uses to turn peak
// numbers into achievable throughput.
//
// Peak compute, cache sizes, memory capacities and STREAM bandwidths are
// taken verbatim from the paper's tables. Efficiency-curve constants are
// calibration: they are chosen once so that the simulator lands inside the
// paper's reported performance ratios (see DESIGN.md "Shape targets"), and
// are documented at their definitions.
package hw

import "fmt"

// ComputePath models one way a processor can execute GEMMs (e.g. AVX-512
// FMA vs. AMX TMUL on the same core). Achievable throughput on an M×N×K
// GEMM is PeakTFLOPS scaled by a saturating shape-efficiency curve
//
//	eff = Base · M/(M+M50) · N/(N+N50) · K/(K+K50)
//
// which captures that matrix engines need enough rows/columns to fill
// their tiles: AMX with its 16×32 tiles loses most of its advantage on the
// skinny GEMMs of small-batch decode, exactly as the paper observes.
type ComputePath struct {
	Name       string
	PeakTFLOPS float64 // dense BF16 peak
	// Base is the fraction of peak achievable on large square GEMMs.
	Base float64
	// M50/N50/K50 are the dimensions at which the respective axis reaches
	// half of its asymptotic utilization.
	M50, N50, K50 float64
}

// Efficiency returns the achievable fraction of peak for an M×N×K GEMM.
func (p ComputePath) Efficiency(m, n, k int64) float64 {
	if p.PeakTFLOPS == 0 {
		return 0
	}
	fm := float64(m) / (float64(m) + p.M50)
	fn := float64(n) / (float64(n) + p.N50)
	fk := float64(k) / (float64(k) + p.K50)
	return p.Base * fm * fn * fk
}

// EffectiveFLOPS returns achievable FLOP/s for an M×N×K GEMM.
func (p ComputePath) EffectiveFLOPS(m, n, k int64) float64 {
	return p.PeakTFLOPS * 1e12 * p.Efficiency(m, n, k)
}

// MemTier is one memory technology attached to a socket.
type MemTier struct {
	Name         string
	CapacityGB   float64 // per socket
	BandwidthGBs float64 // per socket, STREAM-measured
}

// CPU describes a CPU server (one entry of Table I).
type CPU struct {
	Name           string
	Gen            string // microarchitecture
	CoresPerSocket int
	Sockets        int
	FreqGHz        float64
	AVX512         ComputePath // per socket at full cores
	AMX            ComputePath // zero PeakTFLOPS if unsupported
	L1DKB          float64     // per core
	L2MB           float64     // per core
	L3MB           float64     // per socket
	DDR            MemTier
	HBM            MemTier // zero capacity if absent
	// UPIGBs is the per-direction inter-socket UPI bandwidth.
	UPIGBs float64
	// MemEff is the fraction of STREAM bandwidth the inference runtime
	// sustains on large streaming reads (weights, KV cache).
	MemEff float64
	// StepOverheadMS is the per-forward-pass framework overhead (token
	// loop, op dispatch) observed with IPEX-style runtimes.
	StepOverheadMS float64
	// BWSaturationCores is the core count at which a socket reaches half
	// of its saturated memory bandwidth; memory-bound phases scale with
	// cores/(cores+BWSaturationCores).
	BWSaturationCores float64
}

// HasAMX reports whether the CPU has an AMX matrix engine.
func (c CPU) HasAMX() bool { return c.AMX.PeakTFLOPS > 0 }

// BestPath returns the fastest compute path for an M×N×K GEMM, comparing
// the AVX-512 and (if present) AMX paths at their achievable throughput.
func (c CPU) BestPath(m, n, k int64) ComputePath {
	if c.HasAMX() && c.AMX.EffectiveFLOPS(m, n, k) > c.AVX512.EffectiveFLOPS(m, n, k) {
		return c.AMX
	}
	return c.AVX512
}

// TotalMemoryGB returns the per-socket memory capacity across tiers.
func (c CPU) TotalMemoryGB() float64 { return c.DDR.CapacityGB + c.HBM.CapacityGB }

// Link is a host-device interconnect. Sustained offloading bandwidth
// depends on how deeply the runtime can pipeline DMA chunks: at batch 1
// each per-layer transfer completes before the next microsecond-scale
// kernel issues, so per-chunk latency and scheduling gaps dominate; at
// large batch the compute between transfers keeps the DMA queue full and
// throughput approaches spec. Achieved(batch) interpolates between the
// two regimes.
type Link struct {
	Name string
	// TheoreticalGBs is the spec bandwidth (e.g. PCIe 4.0 x16 = 64 GB/s).
	TheoreticalGBs float64
	// BasePipeEff is the fraction of spec sustained with an idle pipeline
	// (batch-1 decode).
	BasePipeEff float64
	// FullPipeEff is the fraction of spec sustained with a saturated DMA
	// pipeline (large-batch runs).
	FullPipeEff float64
}

// Achieved returns the sustained link bandwidth in GB/s at the given batch
// size, saturating at batch ≥ 16.
func (l Link) Achieved(batch int) float64 {
	f := float64(batch-1) / 15
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return l.TheoreticalGBs * (l.BasePipeEff + (l.FullPipeEff-l.BasePipeEff)*f)
}

// GPU describes a GPU server (one entry of Table II).
type GPU struct {
	Name       string
	SMs        int
	PeakTFLOPS float64 // dense BF16
	L1KB       float64 // per SM
	L2MB       float64
	MemGB      float64
	// BandwidthGBs is STREAM-measured HBM bandwidth.
	BandwidthGBs float64
	PCIe         Link
	Compute      ComputePath
	// MemEff is the fraction of HBM bandwidth sustained on streaming
	// inference reads.
	MemEff float64
	// StepOverheadMS is per-forward-pass launch/sync overhead.
	StepOverheadMS float64
	// WorkspaceGB is memory reserved for activations, workspace and
	// fragmentation, unavailable for weights/KV.
	WorkspaceGB float64
}

// FitsWeights reports whether weightGB of parameters fit in GPU memory
// alongside the reserved workspace.
func (g GPU) FitsWeights(weightGB float64) bool {
	return weightGB <= g.MemGB-g.WorkspaceGB
}

func (g GPU) String() string { return g.Name }

func (c CPU) String() string { return fmt.Sprintf("%s (%s)", c.Name, c.Gen) }
