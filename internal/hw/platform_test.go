package hw

import (
	"testing"
	"testing/quick"
)

// TestTableI pins the CPU presets to the paper's Table I values.
func TestTableI(t *testing.T) {
	if ICL8352Y.CoresPerSocket != 32 || ICL8352Y.Sockets != 2 ||
		ICL8352Y.FreqGHz != 2.20 || ICL8352Y.AVX512.PeakTFLOPS != 18.0 ||
		ICL8352Y.DDR.BandwidthGBs != 156.2 || ICL8352Y.HasAMX() {
		t.Errorf("ICL preset deviates from Table I: %+v", ICL8352Y)
	}
	if SPRMax9468.CoresPerSocket != 48 || SPRMax9468.Sockets != 2 ||
		SPRMax9468.FreqGHz != 2.10 || SPRMax9468.AVX512.PeakTFLOPS != 25.6 ||
		SPRMax9468.AMX.PeakTFLOPS != 206.4 ||
		SPRMax9468.DDR.BandwidthGBs != 233.8 ||
		SPRMax9468.HBM.BandwidthGBs != 588 || SPRMax9468.HBM.CapacityGB != 64 ||
		!SPRMax9468.HasAMX() {
		t.Errorf("SPR preset deviates from Table I: %+v", SPRMax9468)
	}
	if ICL8352Y.L2MB != 1.25 || SPRMax9468.L2MB != 2 ||
		ICL8352Y.L3MB != 48 || SPRMax9468.L3MB != 105 {
		t.Error("cache sizes deviate from Table I")
	}
	// Table I lists total DDR capacity (256 / 512 GB across two sockets).
	if ICL8352Y.DDR.CapacityGB*2 != 256 || SPRMax9468.DDR.CapacityGB*2 != 512 {
		t.Error("DDR capacities deviate from Table I")
	}
}

// TestTableII pins the GPU presets to the paper's Table II values.
func TestTableII(t *testing.T) {
	if A100.SMs != 108 || A100.PeakTFLOPS != 312 || A100.MemGB != 40 ||
		A100.BandwidthGBs != 1299.9 || A100.PCIe.TheoreticalGBs != 64 {
		t.Errorf("A100 preset deviates from Table II: %+v", A100)
	}
	if H100.SMs != 132 || H100.PeakTFLOPS != 756 || H100.MemGB != 80 ||
		H100.BandwidthGBs != 1754.4 || H100.PCIe.TheoreticalGBs != 128 {
		t.Errorf("H100 preset deviates from Table II: %+v", H100)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	// Property: efficiency always lies in (0, Base] for positive dims.
	f := func(m, n, k uint16) bool {
		mm, nn, kk := int64(m)+1, int64(n)+1, int64(k)+1
		for _, p := range []ComputePath{SPRMax9468.AMX, ICL8352Y.AVX512, H100.Compute} {
			e := p.Efficiency(mm, nn, kk)
			if e <= 0 || e > p.Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	// Bigger GEMMs never run at lower fraction of peak.
	p := SPRMax9468.AMX
	if p.Efficiency(1, 4096, 4096) >= p.Efficiency(64, 4096, 4096) {
		t.Error("efficiency must grow with M")
	}
	if p.Efficiency(64, 64, 4096) >= p.Efficiency(64, 4096, 4096) {
		t.Error("efficiency must grow with N")
	}
}

// TestAMXAdvantageByShape: the paper's core compute observation — AMX wins
// big on prefill-shaped GEMMs but barely matters for batch-1 decode GEMVs.
func TestAMXAdvantageByShape(t *testing.T) {
	spr := SPRMax9468
	// Prefill shape: 128 rows, big N/K.
	preAMX := spr.AMX.EffectiveFLOPS(128, 5120, 5120)
	preAVX := spr.AVX512.EffectiveFLOPS(128, 5120, 5120)
	if preAMX < 3*preAVX {
		t.Errorf("AMX prefill advantage only %.1fx", preAMX/preAVX)
	}
	if best := spr.BestPath(128, 5120, 5120); best.Name != "amx-bf16" {
		t.Errorf("BestPath(prefill) = %s", best.Name)
	}
	// Decode shape: single row.
	decAMX := spr.AMX.EffectiveFLOPS(1, 5120, 5120)
	decAVX := spr.AVX512.EffectiveFLOPS(1, 5120, 5120)
	if decAMX > 3*decAVX {
		t.Errorf("AMX decode advantage implausibly large: %.1fx", decAMX/decAVX)
	}
}

// TestSPRPrefillThroughputWindow: achievable AMX throughput on a typical
// prefill GEMM must give a 6.3–9.1× edge over ICL (the paper's Fig 10a
// prefill range).
func TestSPRPrefillThroughputWindow(t *testing.T) {
	m, n, k := int64(128), int64(5120), int64(5120)
	ratio := SPRMax9468.AMX.EffectiveFLOPS(m, n, k) / ICL8352Y.AVX512.EffectiveFLOPS(m, n, k)
	if ratio < 5.5 || ratio > 10 {
		t.Errorf("SPR/ICL prefill compute ratio = %.2f, want ≈6.3–9.1", ratio)
	}
}

func TestGPUFitsWeights(t *testing.T) {
	if !H100.FitsWeights(60) {
		t.Error("H100 must fit OPT-30B (60 GB)")
	}
	if A100.FitsWeights(60) {
		t.Error("A100-40GB must not fit OPT-30B")
	}
	if H100.FitsWeights(132) {
		t.Error("H100 must not fit OPT-66B")
	}
}

func TestLinkAchievedBelowTheoretical(t *testing.T) {
	for _, g := range []GPU{A100, H100} {
		for _, b := range []int{1, 4, 16, 32} {
			if got := g.PCIe.Achieved(b); got >= g.PCIe.TheoreticalGBs || got <= 0 {
				t.Errorf("%s batch %d: achieved %.0f GB/s out of (0, %.0f)",
					g.Name, b, got, g.PCIe.TheoreticalGBs)
			}
		}
	}
}

func TestLinkPipelining(t *testing.T) {
	// Achieved bandwidth must grow with batch and saturate at 16.
	l := H100.PCIe
	if !(l.Achieved(1) < l.Achieved(8) && l.Achieved(8) < l.Achieved(16)) {
		t.Error("achieved bandwidth must grow with batch")
	}
	if l.Achieved(16) != l.Achieved(32) {
		t.Error("achieved bandwidth must saturate at batch 16")
	}
	if l.Achieved(1) != 128*0.45 {
		t.Errorf("H100 batch-1 achieved = %v, want %v", l.Achieved(1), 128*0.45)
	}
}

func TestTotalMemory(t *testing.T) {
	if got := SPRMax9468.TotalMemoryGB(); got != 320 {
		t.Errorf("SPR per-socket memory = %v GB, want 320 (256 DDR + 64 HBM)", got)
	}
	if ICL8352Y.TotalMemoryGB() != 128 {
		t.Error("ICL per-socket memory wrong")
	}
}

func TestStringers(t *testing.T) {
	if A100.String() != "A100-40GB" {
		t.Error("GPU String wrong")
	}
	if SPRMax9468.String() != "Xeon Max 9468 (SapphireRapids)" {
		t.Errorf("CPU String = %q", SPRMax9468.String())
	}
}
