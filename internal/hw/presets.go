package hw

// ICL8352Y is CPU 1 of Table I: 3rd-generation Xeon (IceLake) 8352Y.
// 32 cores/socket × 2, 2.20 GHz, AVX-512 BF16 18.0 TFLOPS, DDR4-256GB at
// 156.2 GB/s STREAM. No AMX, no HBM.
var ICL8352Y = CPU{
	Name:           "Xeon 8352Y",
	Gen:            "IceLake",
	CoresPerSocket: 32,
	Sockets:        2,
	FreqGHz:        2.20,
	AVX512: ComputePath{
		Name:       "avx512-bf16",
		PeakTFLOPS: 18.0,
		// AVX-512 FMA pipelines fill with small operands; utilization is
		// limited mainly by load/store pressure on large GEMMs.
		Base: 0.85, M50: 6, N50: 48, K50: 96,
	},
	L1DKB: 48, L2MB: 1.25, L3MB: 48,
	DDR:               MemTier{Name: "DDR4", CapacityGB: 128, BandwidthGBs: 156.2},
	UPIGBs:            41.6,
	MemEff:            0.85,
	StepOverheadMS:    5.0,
	BWSaturationCores: 6,
}

// SPRMax9468 is CPU 2 of Table I: 4th-generation Xeon Max 9468 (Sapphire
// Rapids). 48 cores/socket × 2, 2.10 GHz, AVX-512 25.6 / AMX 206.4 TFLOPS
// BF16, DDR5-512GB at 233.8 GB/s plus 64GB HBM per socket at 588 GB/s.
var SPRMax9468 = CPU{
	Name:           "Xeon Max 9468",
	Gen:            "SapphireRapids",
	CoresPerSocket: 48,
	Sockets:        2,
	FreqGHz:        2.10,
	AVX512: ComputePath{
		Name:       "avx512-bf16",
		PeakTFLOPS: 25.6,
		Base:       0.85, M50: 6, N50: 48, K50: 96,
	},
	AMX: ComputePath{
		Name:       "amx-bf16",
		PeakTFLOPS: 206.4,
		// AMX needs 16-row × 16-col tiles with 32-deep K to approach peak;
		// small-batch GEMVs leave most of the TMUL idle, and sustained
		// large-GEMM utilization is bounded by tile load bandwidth. The
		// constants land oneDNN-like fractions: ~50 % of peak on large
		// prefill GEMMs, a few percent on batch-1 decode.
		Base: 0.75, M50: 30, N50: 96, K50: 192,
	},
	L1DKB: 48, L2MB: 2, L3MB: 105,
	DDR:               MemTier{Name: "DDR5", CapacityGB: 256, BandwidthGBs: 233.8},
	HBM:               MemTier{Name: "HBM2e", CapacityGB: 64, BandwidthGBs: 588},
	UPIGBs:            62.4,
	MemEff:            0.85,
	StepOverheadMS:    4.0,
	BWSaturationCores: 10,
}

// A100 is GPU 1 of Table II: NVIDIA A100-40GB, 108 SMs, 312 TFLOPS dense
// BF16, 40 MB L2, 1299.9 GB/s STREAM HBM, PCIe 4.0 x16 (64 GB/s).
var A100 = GPU{
	Name:       "A100-40GB",
	SMs:        108,
	PeakTFLOPS: 312,
	L1KB:       192, L2MB: 40,
	MemGB:        40,
	BandwidthGBs: 1299.9,
	PCIe: Link{
		Name:           "PCIe 4.0 x16",
		TheoreticalGBs: 64,
		// PCIe 4.0 DMA engines are mature: even unpipelined transfers
		// sustain ~60 % of spec. Calibrated against the paper's OPT-30B
		// batch-1 result (CPU 12.7× faster than the offloading A100).
		BasePipeEff: 0.60,
		FullPipeEff: 0.85,
	},
	Compute: ComputePath{
		Name:       "tensor-core-bf16",
		PeakTFLOPS: 312,
		// Tensor cores need large tiles; small-batch prefill reaches ~half
		// of peak, batch-1 decode GEMVs are bandwidth-bound anyway.
		Base: 0.65, M50: 48, N50: 256, K50: 512,
	},
	MemEff:         0.92,
	StepOverheadMS: 0.35,
	WorkspaceGB:    6,
}

// GH200 models the Grace-Hopper Superchip the paper's §V-B discusses:
// the same H100 silicon, but offloaded tensors reach it over the 900 GB/s
// (450 GB/s per direction) NVLink-C2C instead of PCIe — "lower overheads
// for offloading from DRAM ... albeit at a cost of ~4× of the SPR CPU and
// DDR5". Grace's LPDDR5X (480 GB) is the host side.
var GH200 = GPU{
	Name:       "GH200",
	SMs:        132,
	PeakTFLOPS: 756, // same Hopper GPU (SXM clocks are higher; keep Table II's dense BF16)
	L1KB:       256, L2MB: 50,
	MemGB:        96,         // HBM3 variant
	BandwidthGBs: 3350 * 0.6, // HBM3 spec discounted to STREAM-like sustained
	PCIe: Link{
		Name:           "NVLink-C2C",
		TheoreticalGBs: 450, // per direction
		// Coherent NVLink sustains a high fraction of spec even without
		// deep pipelining.
		BasePipeEff: 0.70,
		FullPipeEff: 0.90,
	},
	Compute: ComputePath{
		Name:       "tensor-core-bf16",
		PeakTFLOPS: 756,
		Base:       0.60, M50: 48, N50: 256, K50: 512,
	},
	MemEff:         0.92,
	StepOverheadMS: 0.30,
	WorkspaceGB:    8,
}

// H100 is GPU 2 of Table II: NVIDIA H100-80GB, 132 SMs, 756 TFLOPS dense
// BF16, 50 MB L2, 1754.4 GB/s STREAM HBM, PCIe 5.0 x16 (128 GB/s).
var H100 = GPU{
	Name:       "H100-80GB",
	SMs:        132,
	PeakTFLOPS: 756,
	L1KB:       256, L2MB: 50,
	MemGB:        80,
	BandwidthGBs: 1754.4,
	PCIe: Link{
		Name:           "PCIe 5.0 x16",
		TheoreticalGBs: 128,
		// PCIe 5.0 sustains a much lower fraction of spec on unpipelined
		// chunked transfers (observed broadly in offloading studies);
		// calibrated against the paper's OPT-66B batch-1 CPU-vs-H100
		// ratio (5× throughput in the CPU's favor).
		BasePipeEff: 0.45,
		FullPipeEff: 0.85,
	},
	Compute: ComputePath{
		Name:       "tensor-core-bf16",
		PeakTFLOPS: 756,
		Base:       0.60, M50: 48, N50: 256, K50: 512,
	},
	MemEff:         0.92,
	StepOverheadMS: 0.30,
	WorkspaceGB:    8,
}
