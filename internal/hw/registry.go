package hw

// registry.go enumerates the evaluation platforms as a single registry so
// the API and CLI layers derive platform lists and lookups from one place
// instead of hardcoding name slices.

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownPlatform marks lookups of platform keys not in the registry,
// so API layers can distinguish "no such resource" (404) from malformed
// input (400) with errors.Is.
var ErrUnknownPlatform = errors.New("hw: unknown platform")

// PlatformKind distinguishes the two simulation substrates.
type PlatformKind int

const (
	// CPUPlatform runs through the CPU performance model (memsim).
	CPUPlatform PlatformKind = iota
	// GPUPlatform runs through the GPU model, offloading when the model
	// does not fit in device memory.
	GPUPlatform
)

// String returns "cpu" or "gpu".
func (k PlatformKind) String() string {
	if k == CPUPlatform {
		return "cpu"
	}
	return "gpu"
}

// PlatformEntry is one registered evaluation platform.
type PlatformEntry struct {
	// Key is the stable lookup name used in CLIs and API requests.
	Key  string
	Kind PlatformKind
	// CPU is set for CPUPlatform entries, GPU for GPUPlatform ones.
	CPU *CPU
	GPU *GPU
	// Description is a one-line human summary for listings.
	Description string
}

// Name returns the underlying hardware's marketing name.
func (e PlatformEntry) Name() string {
	if e.Kind == CPUPlatform {
		return e.CPU.Name
	}
	return e.GPU.Name
}

var platformRegistry = map[string]PlatformEntry{
	"spr": {Key: "spr", Kind: CPUPlatform, CPU: &SPRMax9468,
		Description: "Xeon Max 9468 (Sapphire Rapids), AMX + HBM, Table I CPU 2"},
	"icl": {Key: "icl", Kind: CPUPlatform, CPU: &ICL8352Y,
		Description: "Xeon 8352Y (IceLake), AVX-512 + DDR4, Table I CPU 1"},
	"a100": {Key: "a100", Kind: GPUPlatform, GPU: &A100,
		Description: "NVIDIA A100-40GB over PCIe 4.0, Table II GPU 1"},
	"h100": {Key: "h100", Kind: GPUPlatform, GPU: &H100,
		Description: "NVIDIA H100-80GB over PCIe 5.0, Table II GPU 2"},
	"gh200": {Key: "gh200", Kind: GPUPlatform, GPU: &GH200,
		Description: "GH200 Superchip, NVLink-C2C offload path (§V-B)"},
}

// Platforms returns every registered platform sorted by key.
func Platforms() []PlatformEntry {
	out := make([]PlatformEntry, 0, len(platformRegistry))
	for _, e := range platformRegistry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PlatformKeys returns the registered platform keys sorted.
func PlatformKeys() []string {
	ps := Platforms()
	out := make([]string, len(ps))
	for i, e := range ps {
		out[i] = e.Key
	}
	return out
}

// PlatformByKey resolves one platform; the error lists valid keys.
func PlatformByKey(key string) (PlatformEntry, error) {
	if e, ok := platformRegistry[key]; ok {
		return e, nil
	}
	return PlatformEntry{}, fmt.Errorf("%w %q (want one of %v)", ErrUnknownPlatform, key, PlatformKeys())
}
