package hw

import "testing"

func TestPlatformRegistry(t *testing.T) {
	ps := Platforms()
	if len(ps) != 5 {
		t.Fatalf("got %d platforms, want 5", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key >= ps[i].Key {
			t.Errorf("platforms not sorted: %q before %q", ps[i-1].Key, ps[i].Key)
		}
	}
	for _, p := range ps {
		switch p.Kind {
		case CPUPlatform:
			if p.CPU == nil {
				t.Errorf("%s: CPU entry without CPU", p.Key)
			}
		case GPUPlatform:
			if p.GPU == nil {
				t.Errorf("%s: GPU entry without GPU", p.Key)
			}
		}
		if p.Name() == "" || p.Description == "" {
			t.Errorf("%s: missing name/description", p.Key)
		}
	}
}

func TestPlatformByKey(t *testing.T) {
	e, err := PlatformByKey("spr")
	if err != nil || e.CPU != &SPRMax9468 {
		t.Fatalf("spr lookup: %+v %v", e, err)
	}
	if _, err := PlatformByKey("tpu"); err == nil {
		t.Fatal("unknown platform should error")
	}
	keys := PlatformKeys()
	if len(keys) != 5 || keys[0] != "a100" {
		t.Fatalf("keys %v", keys)
	}
}
