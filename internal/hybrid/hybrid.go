// Package hybrid implements the paper's second proposed optimization
// (§VI): CPU–GPU cooperative execution. Instead of streaming every layer's
// weights over PCIe (FlexGen-style offloading), the model's layers are
// partitioned: as many layers as fit stay GPU-resident and execute there,
// the remaining layers execute on the CPU next to their weights, and only
// per-token activations cross the PCIe link.
package hybrid

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Run describes one hybrid execution point.
type Run struct {
	GPU                 hw.GPU
	Host                memsim.Config // CPU configuration for the CPU-side layers
	Model               model.Config
	Batch               int
	InputLen, OutputLen int
	Weights             tensor.DType
}

// Split describes a layer partition: layers [0, GPULayers) run on the GPU,
// the rest on the CPU.
type Split struct {
	GPULayers int
	CPULayers int
}

// MaxGPULayers returns how many decoder blocks fit in GPU memory next to
// the workspace (embeddings and head stay with the CPU side).
func (r Run) MaxGPULayers() int {
	free := (r.GPU.MemGB - r.GPU.WorkspaceGB) * 1e9
	layerBytes := float64((r.Model.AttnParams() + r.Model.FFNParams()) * int64(r.Weights.Size()))
	if layerBytes <= 0 {
		return 0
	}
	n := int(free / layerBytes)
	if n > r.Model.Layers {
		n = r.Model.Layers
	}
	if n < 0 {
		n = 0
	}
	return n
}

// scaleOps returns the ops of one pass with per-layer instances and bytes
// scaled to `layers` of the model's blocks. The LM head is charged to the
// CPU side (with the embeddings).
func scaleOps(m model.Config, ph model.Phase, batch, seq, ctx, layers int, dt tensor.DType, withHead bool) []model.Op {
	frac := float64(layers) / float64(m.Layers)
	var out []model.Op
	for _, o := range m.Ops(ph, batch, seq, ctx, dt) {
		if o.Name == "lm_head" {
			if withHead {
				out = append(out, o)
			}
			continue
		}
		o.Instances = int64(float64(o.Instances)*frac + 0.5)
		o.WeightBytes = int64(float64(o.WeightBytes) * frac)
		o.IOBytes = int64(float64(o.IOBytes) * frac)
		if o.Instances > 0 {
			out = append(out, o)
		}
	}
	return out
}

// pricePhase prices one forward pass under the split: GPU layers at GPU
// roofline, CPU layers at CPU roofline, plus one activation round-trip
// over PCIe per pass.
func (r Run) pricePhase(ph model.Phase, seq, ctx int, split Split, cpuBW float64, cpuScale float64) float64 {
	var t float64
	// GPU side.
	if split.GPULayers > 0 {
		gpuBW := r.GPU.BandwidthGBs * r.GPU.MemEff * 1e9
		for _, o := range scaleOps(r.Model, ph, r.Batch, seq, ctx, split.GPULayers, r.Weights, false) {
			compute := o.FLOPs() / r.GPU.Compute.EffectiveFLOPS(o.M, o.N, o.K)
			mem := float64(o.Bytes()) / gpuBW
			t += maxF(compute, mem)
		}
		t += r.GPU.StepOverheadMS / 1e3
	}
	// CPU side (including embeddings + head).
	if split.CPULayers > 0 || true {
		cpu := r.Host.CPU
		for _, o := range scaleOps(r.Model, ph, r.Batch, seq, ctx, split.CPULayers, r.Weights, true) {
			path := cpu.BestPath(o.M, o.N, o.K)
			compute := o.FLOPs() / (path.EffectiveFLOPS(o.M, o.N, o.K) * cpuScale)
			mem := float64(o.Bytes()) / (cpuBW * 1e9)
			t += maxF(compute, mem)
		}
		t += cpu.StepOverheadMS / 1e3
	}
	// Activation handoff: hidden states cross the link once each way.
	rows := float64(r.Batch)
	if ph == model.Prefill {
		rows *= float64(seq)
	}
	actBytes := rows * float64(r.Model.DModel) * 2 * 2
	t += actBytes / (r.GPU.PCIe.Achieved(r.Batch) * 1e9)
	return t
}

// phaseParts prices one forward pass' GPU-side and CPU-side times
// separately (activation handoff charged to the GPU side).
func (r Run) phaseParts(ph model.Phase, seq, ctx int, split Split, cpuBW, cpuScale float64) (gpu, cpu float64) {
	if split.GPULayers > 0 {
		gpuBW := r.GPU.BandwidthGBs * r.GPU.MemEff * 1e9
		for _, o := range scaleOps(r.Model, ph, r.Batch, seq, ctx, split.GPULayers, r.Weights, false) {
			compute := o.FLOPs() / r.GPU.Compute.EffectiveFLOPS(o.M, o.N, o.K)
			mem := float64(o.Bytes()) / gpuBW
			gpu += maxF(compute, mem)
		}
		gpu += r.GPU.StepOverheadMS / 1e3
		rows := float64(r.Batch)
		if ph == model.Prefill {
			rows *= float64(seq)
		}
		gpu += rows * float64(r.Model.DModel) * 2 * 2 / (r.GPU.PCIe.Achieved(r.Batch) * 1e9)
	}
	c := r.Host.CPU
	for _, o := range scaleOps(r.Model, ph, r.Batch, seq, ctx, split.CPULayers, r.Weights, true) {
		path := c.BestPath(o.M, o.N, o.K)
		compute := o.FLOPs() / (path.EffectiveFLOPS(o.M, o.N, o.K) * cpuScale)
		mem := float64(o.Bytes()) / (cpuBW * 1e9)
		cpu += maxF(compute, mem)
	}
	cpu += c.StepOverheadMS / 1e3
	return gpu, cpu
}

// SimulatePipelined prices the run with the two halves pipelined across
// decode steps: while the CPU runs step t's CPU layers, the GPU already
// runs step t+1's... which autoregression forbids within one sequence —
// but with two or more *sequences* interleaved (micro-batching), the GPU
// half of one sequence overlaps the CPU half of the other. Steady-state
// decode cost per step is max(gpu, cpu) instead of gpu+cpu; prefill and
// batch-1 runs gain nothing.
func (r Run) SimulatePipelined(split Split) (metrics.Result, error) {
	if err := r.validate(split); err != nil {
		return metrics.Result{}, err
	}
	seq, err := r.Simulate(split)
	if err != nil {
		return metrics.Result{}, err
	}
	if r.Batch < 2 {
		return seq, nil // nothing to interleave
	}
	cpuFootprint := float64(r.Model.WeightBytes(r.Weights))*
		float64(split.CPULayers)/float64(r.Model.Layers)/1e9 +
		float64(r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16))/1e9
	if cpuFootprint < 1 {
		cpuFootprint = 1
	}
	bw, err := r.Host.Bandwidth(cpuFootprint)
	if err != nil {
		return metrics.Result{}, err
	}
	scale := r.Host.ComputeScale()
	var decode float64
	for step := 1; step < r.OutputLen; step++ {
		g, c := r.phaseParts(model.Decode, 1, r.InputLen+step, split, bw.EffectiveGBs, scale)
		decode += maxF(g, c) // steady-state overlap
	}
	// One pipeline-fill bubble at the start of decode.
	g0, c0 := r.phaseParts(model.Decode, 1, r.InputLen+1, split, bw.EffectiveGBs, scale)
	decode += minF(g0, c0)
	res := metrics.New(seq.Platform+"+pipelined", r.Model.Name, r.Batch,
		r.InputLen, r.OutputLen, seq.PrefillSeconds, decode)
	res.ComputeSeconds = res.Latency.E2E
	return res, nil
}

// Simulate prices the run with the given split.
func (r Run) Simulate(split Split) (metrics.Result, error) {
	if err := r.validate(split); err != nil {
		return metrics.Result{}, err
	}
	cpuFootprint := float64(r.Model.WeightBytes(r.Weights))*
		float64(split.CPULayers)/float64(r.Model.Layers)/1e9 +
		float64(r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16))/1e9
	if cpuFootprint < 1 {
		cpuFootprint = 1
	}
	bw, err := r.Host.Bandwidth(cpuFootprint)
	if err != nil {
		return metrics.Result{}, err
	}
	scale := r.Host.ComputeScale()

	prefill := r.pricePhase(model.Prefill, r.InputLen, 0, split, bw.EffectiveGBs, scale)
	var decode float64
	for step := 1; step < r.OutputLen; step++ {
		decode += r.pricePhase(model.Decode, 1, r.InputLen+step, split, bw.EffectiveGBs, scale)
	}
	name := fmt.Sprintf("hybrid(%s+%s,%d/%d)", r.GPU.Name, r.Host.CPU.Name,
		split.GPULayers, split.CPULayers)
	res := metrics.New(name, r.Model.Name, r.Batch, r.InputLen, r.OutputLen, prefill, decode)
	res.ComputeSeconds = res.Latency.E2E
	return res, nil
}

// BestSplit searches layer partitions (bounded by GPU capacity) for the
// lowest E2E latency.
func (r Run) BestSplit() (Split, metrics.Result, error) {
	maxGPU := r.MaxGPULayers()
	var (
		best    Split
		bestRes metrics.Result
		found   bool
	)
	for g := 0; g <= maxGPU; g++ {
		split := Split{GPULayers: g, CPULayers: r.Model.Layers - g}
		res, err := r.Simulate(split)
		if err != nil {
			return Split{}, metrics.Result{}, err
		}
		if !found || res.Latency.E2E < bestRes.Latency.E2E {
			best, bestRes, found = split, res, true
		}
	}
	if !found {
		return Split{}, metrics.Result{}, fmt.Errorf("hybrid: no feasible split")
	}
	return best, bestRes, nil
}

// CPUOnly returns the equivalent pure-CPU result for comparison.
func (r Run) CPUOnly() (metrics.Result, error) {
	return perfmodel.CPURun{
		Model: r.Model, Setup: r.Host, Batch: r.Batch,
		InputLen: r.InputLen, OutputLen: r.OutputLen, Weights: r.Weights,
	}.Simulate()
}

func (r Run) validate(split Split) error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("hybrid: non-positive batch/input/output")
	}
	if split.GPULayers < 0 || split.CPULayers < 0 ||
		split.GPULayers+split.CPULayers != r.Model.Layers {
		return fmt.Errorf("hybrid: split %d+%d does not cover %d layers",
			split.GPULayers, split.CPULayers, r.Model.Layers)
	}
	if split.GPULayers > r.MaxGPULayers() {
		return fmt.Errorf("hybrid: %d GPU layers exceed capacity (max %d)",
			split.GPULayers, r.MaxGPULayers())
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
