package hybrid

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/tensor"
)

func run(g hw.GPU, m model.Config, batch int) Run {
	return Run{
		GPU:   g,
		Host:  memsim.Config{CPU: hw.SPRMax9468, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad},
		Model: m, Batch: batch, InputLen: 128, OutputLen: 32,
		Weights: tensor.BF16,
	}
}

func TestMaxGPULayers(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 1)
	g := r.MaxGPULayers()
	// A100 free ≈ 34 GB; OPT-30B layer ≈ 1.23 GB → ~27 layers.
	if g < 20 || g > 30 {
		t.Errorf("A100/OPT-30B max GPU layers = %d, want ~27", g)
	}
	if run(hw.H100, model.OPT13B, 1).MaxGPULayers() != model.OPT13B.Layers {
		t.Error("small model must fit entirely")
	}
}

// TestHybridBeatsOffloadSmallBatch is the §VI claim: for oversized models
// at small batch, partitioning layers between CPU and GPU beats streaming
// weights over PCIe.
func TestHybridBeatsOffloadSmallBatch(t *testing.T) {
	for _, c := range []struct {
		g hw.GPU
		m model.Config
	}{{hw.A100, model.OPT30B}, {hw.H100, model.OPT66B}} {
		r := run(c.g, c.m, 1)
		_, best, err := r.BestSplit()
		if err != nil {
			t.Fatal(err)
		}
		off := offload.Run{GPU: c.g, Host: hw.SPRMax9468, Model: c.m, Batch: 1,
			InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
		offRes, err := off.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if best.Latency.E2E >= offRes.Latency.E2E {
			t.Errorf("%s/%s: hybrid (%.1fs) must beat offloading (%.1fs)",
				c.g.Name, c.m.Name, best.Latency.E2E, offRes.Latency.E2E)
		}
	}
}

// TestHybridBeatsCPUOnly: putting the resident fraction of layers on the
// GPU must also beat the pure-CPU run (the GPU layers run faster and the
// CPU streams fewer weights).
func TestHybridBeatsCPUOnly(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 1)
	_, best, err := r.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := r.CPUOnly()
	if err != nil {
		t.Fatal(err)
	}
	if best.Latency.E2E >= cpu.Latency.E2E {
		t.Errorf("hybrid (%.2fs) must beat pure CPU (%.2fs)",
			best.Latency.E2E, cpu.Latency.E2E)
	}
}

// TestBestSplitUsesGPUCapacity: the optimal split for an oversized model
// should put a substantial number of layers on the GPU.
func TestBestSplitUsesGPUCapacity(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 1)
	split, _, err := r.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	if split.GPULayers == 0 {
		t.Error("best split should use the GPU")
	}
	if split.GPULayers+split.CPULayers != model.OPT30B.Layers {
		t.Error("split must cover all layers")
	}
}

func TestSimulateSplitValidation(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 1)
	if _, err := r.Simulate(Split{GPULayers: 1, CPULayers: 1}); err == nil {
		t.Error("non-covering split must fail")
	}
	if _, err := r.Simulate(Split{GPULayers: 48, CPULayers: 0}); err == nil {
		t.Error("over-capacity split must fail")
	}
	r.Batch = 0
	if _, err := r.Simulate(Split{GPULayers: 0, CPULayers: 48}); err == nil {
		t.Error("zero batch must fail")
	}
}

// TestPipelinedOverlap: with two or more interleaved sequences, pipelined
// hybrid decode must beat sequential hybrid decode; at batch 1 the two
// must be identical (no interleaving possible).
func TestPipelinedOverlap(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 4)
	split, _, err := r.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.Simulate(split)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := r.SimulatePipelined(split)
	if err != nil {
		t.Fatal(err)
	}
	if pip.DecodeSeconds >= seq.DecodeSeconds {
		t.Errorf("pipelined decode %.2fs must beat sequential %.2fs",
			pip.DecodeSeconds, seq.DecodeSeconds)
	}
	// The overlap can at best hide the smaller half: bounded below by
	// half the sequential time.
	if pip.DecodeSeconds < seq.DecodeSeconds*0.45 {
		t.Errorf("pipelined gain implausibly large: %.2fs vs %.2fs",
			pip.DecodeSeconds, seq.DecodeSeconds)
	}
	r1 := run(hw.A100, model.OPT30B, 1)
	split1, _, err := r1.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := r1.Simulate(split1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r1.SimulatePipelined(split1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Latency.E2E != p1.Latency.E2E {
		t.Error("batch-1 pipelined must equal sequential")
	}
	if _, err := r.SimulatePipelined(Split{GPULayers: 1, CPULayers: 1}); err == nil {
		t.Error("invalid split must fail")
	}
}

// TestPureCPUSplitMatchesOrderOfCPURun: the all-CPU split should be within
// 2× of the dedicated CPU model (they price the same work with slightly
// different overhead accounting).
func TestPureCPUSplitMatchesOrderOfCPURun(t *testing.T) {
	r := run(hw.A100, model.OPT13B, 1)
	res, err := r.Simulate(Split{GPULayers: 0, CPULayers: model.OPT13B.Layers})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := r.CPUOnly()
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Latency.E2E / cpu.Latency.E2E
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("all-CPU split %.2fs vs CPU model %.2fs (ratio %.2f)",
			res.Latency.E2E, cpu.Latency.E2E, ratio)
	}
}
