// Package kernels implements the compute kernels of the functional
// inference engine: general matrix multiplication in several tiers (naive
// reference, cache-blocked, parallel, an AMX-emulating BF16 tile kernel,
// and an INT8 kernel with VNNI-style accumulate), plus the pointwise and
// normalization operators of a decoder-only transformer.
//
// All matrices are dense row-major float32 unless stated otherwise. The
// reduced-precision kernels emulate hardware numerics faithfully: BF16
// kernels round inputs to bfloat16 and accumulate in FP32 exactly as Intel
// AMX TMUL (TDPBF16PS) does.
package kernels

import "fmt"

// Gemm computes C = A·B for row-major A (m×k), B (k×n), C (m×n) using the
// cache-blocked kernel. It is the default single-threaded entry point.
func Gemm(m, n, k int, a, b, c []float32) {
	GemmBlocked(m, n, k, a, b, c)
}

func checkDims(m, n, k int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("kernels: gemm %dx%dx%d: slices too short (a=%d b=%d c=%d)",
			m, n, k, len(a), len(b), len(c)))
	}
}

// GemmNaive is the triple-loop reference implementation. Every other GEMM
// tier is tested against it.
func GemmNaive(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = sum
		}
	}
}

// Block sizes for the cache-blocked kernel. MC×KC panels of A are sized to
// stay L2-resident; the inner kernel walks B rows sequentially so hardware
// prefetchers stream it from L3/memory.
const (
	blockM = 64
	blockN = 256
	blockK = 256
)

// GemmBlocked computes C = A·B with MC/NC/KC cache blocking and an
// i-k-j inner ordering that keeps the B row and the C row hot while
// vectorizing naturally.
func GemmBlocked(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	gemmBlockedCols(m, n, k, a, b, c, 0, n)
}

// gemmBlockedCols is GemmBlocked restricted to output columns [jLo, jHi),
// the unit of work for column-splitting small-M GEMMs across workers.
// Accumulation order per output element is identical to the full kernel.
func gemmBlockedCols(m, n, k int, a, b, c []float32, jLo, jHi int) {
	for i := 0; i < m; i++ {
		crow := c[i*n : (i+1)*n]
		for j := jLo; j < jHi; j++ {
			crow[j] = 0
		}
	}
	for i0 := 0; i0 < m; i0 += blockM {
		iMax := min(i0+blockM, m)
		for p0 := 0; p0 < k; p0 += blockK {
			pMax := min(p0+blockK, k)
			for j0 := jLo; j0 < jHi; j0 += blockN {
				jMax := min(j0+blockN, jHi)
				for i := i0; i < iMax; i++ {
					crow := c[i*n : (i+1)*n]
					for p := p0; p < pMax; p++ {
						av := a[i*k+p]
						if av == 0 {
							continue
						}
						brow := b[p*n : p*n+n]
						for j := j0; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// GemmTransB computes C = A·Bᵀ where bT is row-major n×k (i.e. B stored
// transposed). This layout makes the inner loop a dot product of two
// contiguous rows, which is how attention scores Q·Kᵀ are computed.
func GemmTransB(m, n, k int, a, bT, c []float32) {
	if len(a) < m*k || len(bT) < n*k || len(c) < m*n {
		panic("kernels: GemmTransB: slices too short")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bT[j*k : (j+1)*k]
			var sum float32
			for p := range arow {
				sum += arow[p] * brow[p]
			}
			c[i*n+j] = sum
		}
	}
}

// Gemv computes y = A·x for row-major A (m×k). The decode phase of LLM
// inference is dominated by this memory-bound shape (n=1 GEMM).
func Gemv(m, k int, a, x, y []float32) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("kernels: Gemv: slices too short")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		var sum float32
		for p := 0; p < k; p++ {
			sum += arow[p] * x[p]
		}
		y[i] = sum
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
