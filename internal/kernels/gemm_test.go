package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randMat(r *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(r.NormFloat64())
	}
	return m
}

func maxAbsDiff(a, b []float32) float64 {
	var md float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > md {
			md = d
		}
	}
	return md
}

// gemmShapes covers square, tall, wide, tile-aligned and ragged shapes.
var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{3, 5, 7},
	{16, 16, 32}, // exactly one AMX tile step
	{17, 19, 33}, // ragged around tile boundaries
	{64, 64, 64},
	{1, 128, 96}, // GEMV-like
	{128, 1, 96},
	{80, 48, 100},
}

func TestGemmBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range gemmShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmNaive(s.m, s.n, s.k, a, b, want)
		GemmBlocked(s.m, s.n, s.k, a, b, got)
		if d := maxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("shape %+v: blocked diff %g", s, d)
		}
	}
}

func TestGemmParallelMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, s := range gemmShapes {
		for _, workers := range []int{1, 2, 3, 8} {
			a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
			want := make([]float32, s.m*s.n)
			got := make([]float32, s.m*s.n)
			GemmNaive(s.m, s.n, s.k, a, b, want)
			GemmParallel(s.m, s.n, s.k, a, b, got, workers)
			if d := maxAbsDiff(want, got); d > 1e-4 {
				t.Errorf("shape %+v workers %d: diff %g", s, workers, d)
			}
		}
	}
}

func TestGemmTileBF16MatchesBF16Reference(t *testing.T) {
	// The tile kernel must equal a naive GEMM over bf16-rounded inputs
	// with FP32 accumulation (same accumulation order up to tiling; allow
	// small reassociation slack).
	r := rand.New(rand.NewSource(3))
	for _, s := range gemmShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		ar := make([]float32, len(a))
		for i := range a {
			ar[i] = tensor.RoundBF16(a[i])
		}
		br := make([]float32, len(b))
		for i := range b {
			br[i] = tensor.RoundBF16(b[i])
		}
		want := make([]float32, s.m*s.n)
		GemmNaive(s.m, s.n, s.k, ar, br, want)
		got := make([]float32, s.m*s.n)
		GemmTileBF16(s.m, s.n, s.k, a, b, got)
		if d := maxAbsDiff(want, got); d > 1e-3*float64(s.k) {
			t.Errorf("shape %+v: tile bf16 diff %g", s, d)
		}
	}
}

func TestGemmTileBF16ParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, s := range gemmShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmTileBF16(s.m, s.n, s.k, a, b, want)
		GemmTileBF16Parallel(s.m, s.n, s.k, a, b, got, 4)
		if d := maxAbsDiff(want, got); d != 0 {
			t.Errorf("shape %+v: parallel tile kernel diverged by %g", s, d)
		}
	}
}

func TestGemmTransBMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, s := range gemmShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		// Build Bᵀ.
		bT := make([]float32, s.n*s.k)
		for p := 0; p < s.k; p++ {
			for j := 0; j < s.n; j++ {
				bT[j*s.k+p] = b[p*s.n+j]
			}
		}
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmNaive(s.m, s.n, s.k, a, b, want)
		GemmTransB(s.m, s.n, s.k, a, bT, got)
		if d := maxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("shape %+v: transB diff %g", s, d)
		}
	}
}

func TestGemvMatchesGemm(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m, k := 37, 53
	a, x := randMat(r, m*k), randMat(r, k)
	want := make([]float32, m)
	got := make([]float32, m)
	GemmNaive(m, 1, k, a, x, want)
	Gemv(m, k, a, x, got)
	if d := maxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("gemv diff %g", d)
	}
}

func TestGemmInt8MatchesDequantizedNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m, n, k := 24, 18, 40
	a, b := randMat(r, m*k), randMat(r, k*n)
	aq, sa := tensor.QuantizeInt8(a)
	bq, sb := tensor.QuantizeInt8(b)
	ad := tensor.DequantizeInt8(aq, sa)
	bd := tensor.DequantizeInt8(bq, sb)
	want := make([]float32, m*n)
	GemmNaive(m, n, k, ad, bd, want)
	got := make([]float32, m*n)
	GemmInt8(m, n, k, aq, sa, bq, sb, got)
	if d := maxAbsDiff(want, got); d > 1e-3 {
		t.Errorf("int8 gemm diff %g", d)
	}
}

func TestGemmLinearityProperty(t *testing.T) {
	// Property: GEMM is linear in A — (αA)·B == α(A·B).
	r := rand.New(rand.NewSource(8))
	f := func(seed int64, alphaRaw uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		alpha := float32(alphaRaw%7) - 3
		m, n, k := 1+rr.Intn(12), 1+rr.Intn(12), 1+rr.Intn(12)
		a, b := randMat(rr, m*k), randMat(rr, k*n)
		scaled := make([]float32, len(a))
		for i := range a {
			scaled[i] = alpha * a[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		GemmBlocked(m, n, k, scaled, b, c1)
		GemmBlocked(m, n, k, a, b, c2)
		for i := range c2 {
			c2[i] *= alpha
		}
		return maxAbsDiff(c1, c2) < 1e-3
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGemmIdentityProperty(t *testing.T) {
	// Property: A·I == A.
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 5, 17, 32} {
		a := randMat(r, n*n)
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		c := make([]float32, n*n)
		GemmBlocked(n, n, n, a, id, c)
		if d := maxAbsDiff(a, c); d > 1e-5 {
			t.Errorf("n=%d: A·I diff %g", n, d)
		}
	}
}

func TestGemmPanicsOnShortSlices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on short slice")
		}
	}()
	Gemm(4, 4, 4, make([]float32, 15), make([]float32, 16), make([]float32, 16))
}
