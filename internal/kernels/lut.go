package kernels

import (
	"fmt"
	"math"
)

// Lookup-table GEMV (NoMAD-Attention / SAIL style). The decode-phase GEMV
// is memory-bandwidth-bound: every generated token streams the full weight
// matrix once (the paper, Figs 9-12). Product quantization attacks the
// bytes term directly: weight columns are chopped into LUTGroupSize-row
// subvectors, each group learns LUTCentroids representative subvectors
// (a codebook), and every column stores one byte code per group. A GEMV
// then builds a tiny per-group table of x·centroid partial dot products
// and replaces the multiply-accumulate stream with add-only table
// lookups — bytes streamed per token drop from 4·K·N (FP32) to K·N/2
// (4-bit-equivalent codes stored as bytes per 2-row group), and the
// in-register shuffle LUT is the CPU analog of NoMAD's SIMD codebook
// lookups.
//
// The result is approximate. The error is provably bounded: each output
// |y[j] - x·B[:,j]| ≤ ‖x‖₂ · ‖B[:,j] - B̂[:,j]‖₂ where B̂ is the codebook
// reconstruction, and the pack records the worst column reconstruction
// norm so callers (and guard tests) can assert the bound without knowing
// the codebooks.

const (
	// LUTGroupSize is the subvector length quantized per code (NoMAD uses
	// 2-dimensional subquantizers so codes stay 4-bit shuffle-friendly).
	LUTGroupSize = 2
	// LUTCentroids is the codebook size per group (4-bit codes).
	LUTCentroids = 16

	// lutKMeansIters bounds the Lloyd iterations at pack time.
	lutKMeansIters = 8
	// lutTrainColumns bounds the columns sampled for codebook training;
	// assignment still covers every column.
	lutTrainColumns = 256
)

// PackedLUT is a product-quantized weight matrix for the LUT-GEMV tier:
// per-group codebooks plus one uint8 code per (group, column).
type PackedLUT struct {
	K, N   int
	Groups int
	// centroids holds Groups × LUTCentroids × LUTGroupSize values; ragged
	// final groups are zero-padded.
	centroids []float32
	// codes holds Groups × N codebook indices, group-major.
	codes []uint8
	// maxColErr is max_j ‖B[:,j] - B̂[:,j]‖₂, fixed at pack time.
	maxColErr float64
}

// Bytes returns the packed storage footprint (codes + codebooks).
func (pl *PackedLUT) Bytes() int64 {
	return int64(len(pl.codes)) + int64(len(pl.centroids))*4
}

// MaxColumnError returns the worst-case column reconstruction norm
// max_j ‖B[:,j] - B̂[:,j]‖₂. For any activation row x the LUT GEMV error
// per output element is at most ‖x‖₂ · MaxColumnError (Cauchy-Schwarz).
func (pl *PackedLUT) MaxColumnError() float64 { return pl.maxColErr }

// At returns the codebook reconstruction B̂[p, j].
func (pl *PackedLUT) At(p, j int) float32 {
	g := p / LUTGroupSize
	s := p % LUTGroupSize
	code := int(pl.codes[g*pl.N+j])
	return pl.centroids[(g*LUTCentroids+code)*LUTGroupSize+s]
}

// groupRows returns the row span [p0, p1) group g covers.
func (pl *PackedLUT) groupRows(g int) (int, int) {
	p0 := g * LUTGroupSize
	p1 := min(p0+LUTGroupSize, pl.K)
	return p0, p1
}

// PackLUT learns per-group codebooks for row-major B (k×n) with a
// deterministic k-means (stride-sampled training columns, fixed
// iteration count, lowest-index tie breaking) and assigns every column a
// code per group. Packing the same matrix always yields the same
// codebooks and codes.
func PackLUT(k, n int, b []float32) *PackedLUT {
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackLUT %dx%d: slice too short (%d)", k, n, len(b)))
	}
	groups := (k + LUTGroupSize - 1) / LUTGroupSize
	pl := &PackedLUT{
		K: k, N: n, Groups: groups,
		centroids: make([]float32, groups*LUTCentroids*LUTGroupSize),
		codes:     make([]uint8, groups*n),
	}

	// Training sample: every stride-th column, at most lutTrainColumns.
	stride := 1
	if n > lutTrainColumns {
		stride = n / lutTrainColumns
	}

	point := make([]float32, LUTGroupSize)
	colErr := make([]float64, n)
	for g := 0; g < groups; g++ {
		p0, p1 := pl.groupRows(g)
		w := p1 - p0
		cent := pl.centroids[g*LUTCentroids*LUTGroupSize : (g+1)*LUTCentroids*LUTGroupSize]

		// Init: centroids from evenly spaced sampled columns.
		var sampled []int
		for j := 0; j < n; j += stride {
			sampled = append(sampled, j)
		}
		for c := 0; c < LUTCentroids; c++ {
			j := sampled[c*len(sampled)/LUTCentroids%len(sampled)]
			for s := 0; s < w; s++ {
				cent[c*LUTGroupSize+s] = b[(p0+s)*n+j]
			}
		}

		// Lloyd iterations over the sample.
		sums := make([]float64, LUTCentroids*LUTGroupSize)
		counts := make([]int, LUTCentroids)
		for it := 0; it < lutKMeansIters; it++ {
			for i := range sums {
				sums[i] = 0
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, j := range sampled {
				for s := 0; s < w; s++ {
					point[s] = b[(p0+s)*n+j]
				}
				c := nearestCentroid(cent, point[:w])
				counts[c]++
				for s := 0; s < w; s++ {
					sums[c*LUTGroupSize+s] += float64(point[s])
				}
			}
			for c := 0; c < LUTCentroids; c++ {
				if counts[c] == 0 {
					continue // keep the old centroid for empty clusters
				}
				for s := 0; s < w; s++ {
					cent[c*LUTGroupSize+s] = float32(sums[c*LUTGroupSize+s] / float64(counts[c]))
				}
			}
		}

		// Assign every column and accumulate its squared reconstruction
		// error.
		for j := 0; j < n; j++ {
			for s := 0; s < w; s++ {
				point[s] = b[(p0+s)*n+j]
			}
			c := nearestCentroid(cent, point[:w])
			pl.codes[g*n+j] = uint8(c)
			for s := 0; s < w; s++ {
				d := float64(point[s] - cent[c*LUTGroupSize+s])
				colErr[j] += d * d
			}
		}
	}
	for _, e := range colErr {
		if e > pl.maxColErr {
			pl.maxColErr = e
		}
	}
	pl.maxColErr = math.Sqrt(pl.maxColErr)
	return pl
}

// nearestCentroid returns the index of the centroid closest to point in
// squared L2 distance, lowest index winning ties.
func nearestCentroid(cent, point []float32) int {
	best, bestD := 0, float64(-1)
	for c := 0; c < LUTCentroids; c++ {
		var d float64
		for s, v := range point {
			dv := float64(v - cent[c*LUTGroupSize+s])
			d += dv * dv
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// GemvLUT computes y ≈ x·B over a packed LUT: per group it builds the
// 16-entry table of x-subvector · centroid partial products, then sweeps
// the group's codes with add-only lookups. The multiply count drops from
// K·N to Groups·LUTCentroids·LUTGroupSize (≈ 8·K), everything else is
// additions over the code stream.
func GemvLUT(x []float32, pl *PackedLUT, y []float32) {
	if len(x) < pl.K || len(y) < pl.N {
		panic(fmt.Sprintf("kernels: GemvLUT %dx%d: slices too short (x=%d y=%d)",
			pl.K, pl.N, len(x), len(y)))
	}
	n := pl.N
	for j := 0; j < n; j++ {
		y[j] = 0
	}
	var table [LUTCentroids]float32
	for g := 0; g < pl.Groups; g++ {
		p0, p1 := pl.groupRows(g)
		cent := pl.centroids[g*LUTCentroids*LUTGroupSize:]
		for c := 0; c < LUTCentroids; c++ {
			var acc float32
			for s := 0; s < p1-p0; s++ {
				acc += x[p0+s] * cent[c*LUTGroupSize+s]
			}
			table[c] = acc
		}
		codes := pl.codes[g*n : (g+1)*n]
		for j, code := range codes {
			y[j] += table[code]
		}
	}
}

// GemmLUT computes C ≈ A·B row by row over a packed LUT (A row-major
// m×K, C m×N). Rows are independent, so multi-row verification passes
// produce exactly the same per-row values as m separate GemvLUT calls.
func GemmLUT(m int, a []float32, pl *PackedLUT, c []float32) {
	if len(a) < m*pl.K || len(c) < m*pl.N {
		panic(fmt.Sprintf("kernels: GemmLUT %dx%dx%d: slices too short (a=%d c=%d)",
			m, pl.N, pl.K, len(a), len(c)))
	}
	for i := 0; i < m; i++ {
		GemvLUT(a[i*pl.K:(i+1)*pl.K], pl, c[i*pl.N:(i+1)*pl.N])
	}
}
