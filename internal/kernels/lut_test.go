package kernels

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int, scale float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * scale)
	}
	return v
}

// TestGemvLUTBoundedError asserts the pack-time error bound: every output
// element of the LUT GEMV is within ‖x‖₂ · MaxColumnError of the exact
// product, across shapes including ragged group and panel edges.
func TestGemvLUTBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{64, 48}, {128, 200}, {257, 96}, {33, 17}} {
		k, n := shape[0], shape[1]
		b := randVec(rng, k*n, 0.02)
		pl := PackLUT(k, n, b)
		if pl.MaxColumnError() <= 0 {
			t.Fatalf("%dx%d: MaxColumnError = %g, want positive for random weights",
				k, n, pl.MaxColumnError())
		}
		x := randVec(rng, k, 1)
		var xNorm float64
		for _, v := range x {
			xNorm += float64(v) * float64(v)
		}
		xNorm = math.Sqrt(xNorm)
		bound := xNorm*pl.MaxColumnError() + 1e-5

		y := make([]float32, n)
		exact := make([]float32, n)
		GemvLUT(x, pl, y)
		GemmNaive(1, n, k, x, b, exact)
		for j := range y {
			if err := math.Abs(float64(y[j] - exact[j])); err > bound {
				t.Fatalf("%dx%d col %d: |lut-exact| = %g exceeds bound %g",
					k, n, j, err, bound)
			}
		}
	}
}

// TestGemvLUTDeterministic asserts packing and evaluation are fully
// deterministic: two packs of the same matrix agree code-for-code and
// value-for-value.
func TestGemvLUTDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k, n := 96, 80
	b := randVec(rng, k*n, 0.02)
	p1, p2 := PackLUT(k, n, b), PackLUT(k, n, b)
	if p1.MaxColumnError() != p2.MaxColumnError() {
		t.Fatalf("pack error differs: %g vs %g", p1.MaxColumnError(), p2.MaxColumnError())
	}
	x := randVec(rng, k, 1)
	y1, y2 := make([]float32, n), make([]float32, n)
	GemvLUT(x, p1, y1)
	GemvLUT(x, p2, y2)
	for j := range y1 {
		if y1[j] != y2[j] {
			t.Fatalf("col %d: %v vs %v", j, y1[j], y2[j])
		}
	}
}

// TestGemmLUTMatchesRowwise asserts a multi-row LUT GEMM equals per-row
// GEMV calls bit for bit — the property the speculative verification
// pass depends on.
func TestGemmLUTMatchesRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k, n, m := 64, 56, 5
	b := randVec(rng, k*n, 0.02)
	pl := PackLUT(k, n, b)
	a := randVec(rng, m*k, 1)
	c := make([]float32, m*n)
	GemmLUT(m, a, pl, c)
	row := make([]float32, n)
	for i := 0; i < m; i++ {
		GemvLUT(a[i*k:(i+1)*k], pl, row)
		for j := range row {
			if c[i*n+j] != row[j] {
				t.Fatalf("row %d col %d: gemm %v vs gemv %v", i, j, c[i*n+j], row[j])
			}
		}
	}
}

// TestPackLUTCompression asserts the packed footprint is well under the
// FP32 weight bytes — the whole point of the tier.
func TestPackLUTCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, n := 256, 512
	b := randVec(rng, k*n, 0.02)
	pl := PackLUT(k, n, b)
	dense := int64(k * n * 4)
	if pl.Bytes() >= dense/4 {
		t.Fatalf("packed %d bytes, want < 1/4 of dense %d", pl.Bytes(), dense)
	}
}

func TestGemmSparseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][2]int{{64, 48}, {130, 100}, {96, PanelCols}} {
		k, n := shape[0], shape[1]
		b := randVec(rng, k*n, 0.02)
		// Zero out ~40% of the k-rows entirely (structured row sparsity)
		// plus a few scattered values (unstructured, not elidable).
		for p := 0; p < k; p++ {
			if rng.Float64() < 0.4 {
				for j := 0; j < n; j++ {
					b[p*n+j] = 0
				}
			}
		}
		ps := PackBSparse(k, n, b)
		pd := PackB(k, n, b)
		if ps.Density() >= 1 {
			t.Fatalf("%dx%d: density %g, rows were zeroed", k, n, ps.Density())
		}
		m := 3
		a := randVec(rng, m*k, 1)
		cs := make([]float32, m*n)
		cd := make([]float32, m*n)
		GemmSparse(m, a, ps, cs)
		GemmPacked(m, a, pd, cd)
		for i := range cs {
			if cs[i] != cd[i] {
				t.Fatalf("%dx%d elem %d: sparse %v vs packed %v", k, n, i, cs[i], cd[i])
			}
		}
	}
}

// TestGemmSparseDense asserts a fully dense matrix round-trips (bitmap
// all ones) and the GEMV wrapper agrees with the GEMM.
func TestGemmSparseDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	k, n := 40, 24
	b := randVec(rng, k*n, 0.02)
	ps := PackBSparse(k, n, b)
	if ps.Density() != 1 {
		t.Fatalf("density %g, want 1 for dense weights", ps.Density())
	}
	x := randVec(rng, k, 1)
	y := make([]float32, n)
	c := make([]float32, n)
	GemvSparse(x, ps, y)
	GemmSparse(1, x, ps, c)
	for j := range y {
		if y[j] != c[j] {
			t.Fatalf("col %d: gemv %v vs gemm %v", j, y[j], c[j])
		}
	}
}
