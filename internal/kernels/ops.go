package kernels

import "math"

// Softmax computes an in-place numerically stable softmax over x.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range x {
		e := float32(math.Exp(float64(v - maxV)))
		x[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// LayerNorm normalizes x in place to zero mean and unit variance, then
// applies elementwise gain and bias. eps guards the variance. OPT models
// use LayerNorm.
func LayerNorm(x, gain, bias []float32, eps float32) {
	n := float32(len(x))
	var mean float32
	for _, v := range x {
		mean += v
	}
	mean /= n
	var variance float32
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n
	inv := 1 / float32(math.Sqrt(float64(variance+eps)))
	for i := range x {
		x[i] = (x[i]-mean)*inv*gain[i] + bias[i]
	}
}

// RMSNorm applies root-mean-square normalization with gain, the
// normalization used by LLaMA-2.
func RMSNorm(x, gain []float32, eps float32) {
	var ss float32
	for _, v := range x {
		ss += v * v
	}
	inv := 1 / float32(math.Sqrt(float64(ss/float32(len(x))+eps)))
	for i := range x {
		x[i] = x[i] * inv * gain[i]
	}
}

// ReLU applies max(0, x) in place (OPT FFN activation).
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// SiLU applies x·sigmoid(x) in place (LLaMA-2 FFN activation).
func SiLU(x []float32) {
	for i, v := range x {
		x[i] = v / (1 + float32(math.Exp(float64(-v))))
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit in place.
func GELU(x []float32) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range x {
		t := float64(c) * float64(v+0.044715*v*v*v)
		x[i] = 0.5 * v * (1 + float32(math.Tanh(t)))
	}
}

// AddBias adds bias elementwise to x in place.
func AddBias(x, bias []float32) {
	for i := range x {
		x[i] += bias[i]
	}
}

// Add accumulates src into dst in place (residual connections).
func Add(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies x by s in place.
func Scale(x []float32, s float32) {
	for i := range x {
		x[i] *= s
	}
}

// RoPE applies rotary position embedding in place to a head vector of even
// dimension headDim at sequence position pos, using the standard base-10000
// frequencies (LLaMA-2 attention).
func RoPE(x []float32, pos, headDim int) {
	for i := 0; i < headDim; i += 2 {
		theta := float64(pos) * math.Pow(10000, -float64(i)/float64(headDim))
		sin, cos := math.Sincos(theta)
		a, b := x[i], x[i+1]
		x[i] = a*float32(cos) - b*float32(sin)
		x[i+1] = a*float32(sin) + b*float32(cos)
	}
}

// Dot returns the inner product of equal-length a and b.
func Dot(a, b []float32) float32 {
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Argmax returns the index of the largest element (greedy sampling).
func Argmax(x []float32) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
