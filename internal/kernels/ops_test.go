package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := make([]float32, len(vals))
		for i, v := range vals {
			if v != v || math.IsInf(float64(v), 0) {
				return true
			}
			// Clamp to a sane logit range.
			x[i] = float32(math.Mod(float64(v), 50))
		}
		Softmax(x)
		var sum float64
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	y := []float32{101, 102, 103, 104}
	Softmax(x)
	Softmax(y)
	for i := range x {
		if math.Abs(float64(x[i]-y[i])) > 1e-5 {
			t.Fatalf("softmax not shift invariant: %v vs %v", x, y)
		}
	}
}

func TestSoftmaxOverflowSafe(t *testing.T) {
	x := []float32{1e30, 1e30}
	Softmax(x)
	if x[0] != 0.5 || x[1] != 0.5 {
		t.Errorf("softmax overflowed: %v", x)
	}
	Softmax(nil) // must not panic
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 64
	x := make([]float32, n)
	gain := make([]float32, n)
	bias := make([]float32, n)
	for i := range x {
		x[i] = float32(r.NormFloat64()*3 + 7)
		gain[i] = 1
	}
	LayerNorm(x, gain, bias, 1e-5)
	var mean, variance float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(n)
	for _, v := range x {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= float64(n)
	if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
		t.Errorf("layernorm mean=%g var=%g", mean, variance)
	}
}

func TestLayerNormGainBias(t *testing.T) {
	x := []float32{-1, 1}
	LayerNorm(x, []float32{2, 2}, []float32{10, 10}, 0)
	if math.Abs(float64(x[0]-8)) > 1e-4 || math.Abs(float64(x[1]-12)) > 1e-4 {
		t.Errorf("gain/bias wrong: %v", x)
	}
}

func TestRMSNormUnitRMS(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 32
	x := make([]float32, n)
	gain := make([]float32, n)
	for i := range x {
		x[i] = float32(r.NormFloat64() * 5)
		gain[i] = 1
	}
	RMSNorm(x, gain, 0)
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	rms := math.Sqrt(ss / float64(n))
	if math.Abs(rms-1) > 1e-3 {
		t.Errorf("rmsnorm rms=%g", rms)
	}
}

func TestActivations(t *testing.T) {
	x := []float32{-2, -0.5, 0, 0.5, 2}
	relu := append([]float32(nil), x...)
	ReLU(relu)
	want := []float32{0, 0, 0, 0.5, 2}
	for i := range want {
		if relu[i] != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, relu[i], want[i])
		}
	}

	silu := append([]float32(nil), x...)
	SiLU(silu)
	// silu(0)=0; silu(x)≈x for large x; silu is bounded below.
	if silu[2] != 0 {
		t.Errorf("silu(0) = %v", silu[2])
	}
	if math.Abs(float64(silu[4]-2/(1+float32(math.Exp(-2))))) > 1e-5 {
		t.Errorf("silu(2) = %v", silu[4])
	}

	gelu := append([]float32(nil), x...)
	GELU(gelu)
	if gelu[2] != 0 {
		t.Errorf("gelu(0) = %v", gelu[2])
	}
	if math.Abs(float64(gelu[4]-1.9545977)) > 1e-3 {
		t.Errorf("gelu(2) = %v", gelu[4])
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	// Rotation must preserve vector length for any position.
	f := func(seed int64, pos uint16) bool {
		r := rand.New(rand.NewSource(seed))
		d := 8
		x := make([]float32, d)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		var before float64
		for _, v := range x {
			before += float64(v) * float64(v)
		}
		RoPE(x, int(pos%4096), d)
		var after float64
		for _, v := range x {
			after += float64(v) * float64(v)
		}
		return math.Abs(before-after) < 1e-3*(before+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	want := append([]float32(nil), x...)
	RoPE(x, 0, 4)
	for i := range want {
		if math.Abs(float64(x[i]-want[i])) > 1e-6 {
			t.Errorf("RoPE(pos=0) changed input: %v", x)
		}
	}
}

func TestAddBiasAddScale(t *testing.T) {
	x := []float32{1, 2}
	AddBias(x, []float32{10, 20})
	if x[0] != 11 || x[1] != 22 {
		t.Errorf("AddBias: %v", x)
	}
	Add(x, []float32{1, 1})
	if x[0] != 12 || x[1] != 23 {
		t.Errorf("Add: %v", x)
	}
	Scale(x, 2)
	if x[0] != 24 || x[1] != 46 {
		t.Errorf("Scale: %v", x)
	}
}

func TestDotArgmax(t *testing.T) {
	if Dot([]float32{1, 2, 3}, []float32{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Argmax([]float32{0.1, 0.9, 0.5}) != 1 {
		t.Error("Argmax wrong")
	}
}
