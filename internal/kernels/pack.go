package kernels

import (
	"fmt"

	"repro/internal/tensor"
)

// Packed weight layout. Row-major B (k×n) is repacked at load time into
// column panels of PanelCols columns each: panel pn holds the k×PanelCols
// sub-matrix for columns [pn·PanelCols, pn·PanelCols+PanelCols), stored
// row-major and zero-padded on the ragged right edge. The inner GEMM loop
// then streams one contiguous panel top to bottom while holding a
// PanelCols-wide accumulator in registers — the software analog of the
// AMX/VNNI-friendly pre-tiled weight layouts CPU inference runtimes
// (IPEX, SparAMX) build when weights are loaded, which is what lets a
// decode-shape GEMM (tiny M, large K·N) run at streaming bandwidth
// instead of strided-gather speed.
//
// Panels are PanelCols = TileRows wide so a packed panel column band is
// exactly one AMX C-tile column, and the BF16 variant pre-rounds the
// weights once at pack time — the per-call weight conversion that
// dominates the unpacked tile kernel disappears from the hot path.

// PanelCols is the packed panel width in columns.
const PanelCols = TileRows

// PackedB is a weight matrix repacked into column panels (see package
// comment above). BF16 marks that values were rounded to bfloat16 at pack
// time; kernels consuming a BF16 pack round their activation operand to
// match AMX TMUL numerics.
type PackedB struct {
	K, N int
	BF16 bool
	data []float32
}

// Panels returns the number of column panels.
func (pb *PackedB) Panels() int { return (pb.N + PanelCols - 1) / PanelCols }

// Bytes returns the packed storage footprint.
func (pb *PackedB) Bytes() int64 { return int64(len(pb.data)) * 4 }

func packInto(k, n int, at func(p, j int) float32, round bool) *PackedB {
	panels := (n + PanelCols - 1) / PanelCols
	data := make([]float32, panels*k*PanelCols)
	for pn := 0; pn < panels; pn++ {
		j0 := pn * PanelCols
		w := min(PanelCols, n-j0)
		dst := data[pn*k*PanelCols:]
		for p := 0; p < k; p++ {
			row := dst[p*PanelCols:]
			for j := 0; j < w; j++ {
				v := at(p, j0+j)
				if round {
					v = tensor.RoundBF16(v)
				}
				row[j] = v
			}
		}
	}
	return &PackedB{K: k, N: n, BF16: round, data: data}
}

// PackB packs row-major B (k×n) into the panel layout, FP32 values.
func PackB(k, n int, b []float32) *PackedB {
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackB %dx%d: slice too short (%d)", k, n, len(b)))
	}
	return packInto(k, n, func(p, j int) float32 { return b[p*n+j] }, false)
}

// PackBBF16 packs B pre-rounded to bfloat16, the load-time conversion an
// AMX pipeline performs once instead of per GEMM call.
func PackBBF16(k, n int, b []float32) *PackedB {
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackBBF16 %dx%d: slice too short (%d)", k, n, len(b)))
	}
	return packInto(k, n, func(p, j int) float32 { return b[p*n+j] }, true)
}

// PackBTrans packs B given as its transpose: bT is row-major n×k (each row
// one column of B). This packs e.g. a tied embedding head ([vocab, d]
// storage used as a d×vocab matrix) without materializing the transpose.
func PackBTrans(k, n int, bT []float32) *PackedB {
	if len(bT) < k*n {
		panic(fmt.Sprintf("kernels: PackBTrans %dx%d: slice too short (%d)", k, n, len(bT)))
	}
	return packInto(k, n, func(p, j int) float32 { return bT[j*k+p] }, false)
}

// gemmPackedPanels computes C rows [i0,i1) × column panels [pn0,pn1) for
// C = A·B over a packed B. Accumulation is FP32 ascending k per output
// element — bit-identical to GemmNaive for an FP32 pack, and bit-identical
// to GemmTileBF16 for a BF16 pack (same rounding, same zero-skip, same
// accumulation order). For BF16 packs, a must already be bf16-rounded.
func gemmPackedPanels(i0, i1, pn0, pn1 int, a []float32, pb *PackedB, c []float32) {
	k, n := pb.K, pb.N
	for pn := pn0; pn < pn1; pn++ {
		j0 := pn * PanelCols
		w := min(PanelCols, n-j0)
		panel := pb.data[pn*k*PanelCols : (pn+1)*k*PanelCols]
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			var acc [PanelCols]float32
			if pb.BF16 {
				for p, av := range arow {
					if av == 0 {
						continue
					}
					prow := panel[p*PanelCols : p*PanelCols+PanelCols]
					for j := range acc {
						acc[j] += av * prow[j]
					}
				}
			} else {
				for p, av := range arow {
					prow := panel[p*PanelCols : p*PanelCols+PanelCols]
					for j := range acc {
						acc[j] += av * prow[j]
					}
				}
			}
			copy(c[i*n+j0:i*n+j0+w], acc[:w])
		}
	}
}

func checkPackedDims(m int, a []float32, pb *PackedB, c []float32) {
	if len(a) < m*pb.K || len(c) < m*pb.N {
		panic(fmt.Sprintf("kernels: packed gemm %dx%dx%d: slices too short (a=%d c=%d)",
			m, pb.N, pb.K, len(a), len(c)))
	}
}

// GemmPacked computes C = A·B (A row-major m×K, C m×N) over a packed B.
// FP32 packs match GemmNaive bit for bit; BF16 packs match GemmTileBF16
// bit for bit. This is the serial reference entry point — the hot path
// uses GemmPackedPooled, which reuses scratch and splits over a Pool.
func GemmPacked(m int, a []float32, pb *PackedB, c []float32) {
	checkPackedDims(m, a, pb, c)
	if pb.BF16 {
		ar := make([]float32, m*pb.K)
		for i, v := range a[:m*pb.K] {
			ar[i] = tensor.RoundBF16(v)
		}
		a = ar
	}
	gemmPackedPanels(0, m, 0, pb.Panels(), a, pb, c)
}

// GemvPacked computes y = x·B for a single activation row — the decode
// GEMV shape the paper identifies as memory-bound.
func GemvPacked(x []float32, pb *PackedB, y []float32) {
	GemmPacked(1, x, pb, y)
}

// PackedJob is the reusable dispatch state for pool-parallel packed GEMMs.
// Keeping it caller-owned (one per scratch arena) makes steady-state
// dispatch allocation-free: the bf16 rounding buffer and the partition
// descriptor are reused across every call.
type PackedJob struct {
	m  int
	a  []float32
	pb *PackedB
	c  []float32

	byRows    bool
	rowsPer   int
	panelsPer int

	ar []float32 // bf16-rounded activation scratch
}

// RunPart implements Task: it computes one row band or one column-panel
// band of the current GEMM.
func (j *PackedJob) RunPart(part, parts int) {
	if j.byRows {
		i0 := part * j.rowsPer
		i1 := min(i0+j.rowsPer, j.m)
		if i0 < i1 {
			gemmPackedPanels(i0, i1, 0, j.pb.Panels(), j.a, j.pb, j.c)
		}
		return
	}
	pn0 := part * j.panelsPer
	pn1 := min(pn0+j.panelsPer, j.pb.Panels())
	if pn0 < pn1 {
		gemmPackedPanels(0, j.m, pn0, pn1, j.a, j.pb, j.c)
	}
}

// GemmPackedPooled computes C = A·B over a packed B, splitting the work
// across the pool: by rows when M ≥ workers (prefill), by column panels
// when M < workers (decode), so a batch=1 GEMV still uses every core.
// A nil pool runs inline. Results are bit-identical to GemmPacked for any
// worker count — each output element's accumulation order is fixed.
func GemmPackedPooled(p *Pool, j *PackedJob, m int, a []float32, pb *PackedB, c []float32) {
	checkPackedDims(m, a, pb, c)
	if pb.BF16 {
		need := m * pb.K
		if cap(j.ar) < need {
			j.ar = make([]float32, need)
		}
		j.ar = j.ar[:need]
		for i, v := range a[:need] {
			j.ar[i] = tensor.RoundBF16(v)
		}
		a = j.ar
	}
	workers := p.Workers()
	panels := pb.Panels()
	if workers <= 1 {
		gemmPackedPanels(0, m, 0, panels, a, pb, c)
		return
	}
	j.m, j.a, j.pb, j.c = m, a, pb, c
	if m >= workers {
		j.byRows = true
		j.rowsPer = (m + workers - 1) / workers
		p.Run(j, workers)
	} else {
		parts := min(workers, panels)
		j.byRows = false
		j.panelsPer = (panels + parts - 1) / parts
		p.Run(j, parts)
	}
	j.a, j.pb, j.c = nil, nil, nil
}
