package kernels

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// bitsEqual reports whether two float32 slices are bit-for-bit identical
// (stricter than ==, which treats +0 and -0 as equal and NaN as unequal).
func bitsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// packShapes stresses ragged edge panels (n % PanelCols != 0), GEMV rows,
// and k values straddling tile-depth boundaries.
var packShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 15, 7},  // single ragged panel
	{1, 16, 32}, // exactly one panel
	{1, 17, 33}, // panel + 1-column edge
	{3, 5, 7},
	{4, 97, 64}, // vocab-like ragged edge
	{8, 48, 100},
	{16, 16, 32},
	{17, 19, 33},
	{1, 128, 96},  // decode GEMV
	{32, 256, 64}, // batched decode
}

func TestGemmPackedMatchesNaiveBitForBit(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, s := range packShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmNaive(s.m, s.n, s.k, a, b, want)
		pb := PackB(s.k, s.n, b)
		GemmPacked(s.m, a, pb, got)
		if i, ok := bitsEqual(want, got); !ok {
			t.Errorf("shape %+v: packed fp32 differs from naive at %d: %v vs %v",
				s, i, want[i], got[i])
		}
	}
}

func TestGemmPackedBF16MatchesTileBitForBit(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, s := range packShapes {
		a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmTileBF16(s.m, s.n, s.k, a, b, want)
		pb := PackBBF16(s.k, s.n, b)
		GemmPacked(s.m, a, pb, got)
		if i, ok := bitsEqual(want, got); !ok {
			t.Errorf("shape %+v: packed bf16 differs from tile kernel at %d: %v vs %v",
				s, i, want[i], got[i])
		}
	}
}

func TestGemvPackedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	k, n := 100, 97
	x, b := randMat(r, k), randMat(r, k*n)
	want := make([]float32, n)
	got := make([]float32, n)
	GemmNaive(1, n, k, x, b, want)
	GemvPacked(x, PackB(k, n, b), got)
	if i, ok := bitsEqual(want, got); !ok {
		t.Errorf("gemv packed differs at %d", i)
	}
}

func TestPackBTransMatchesPackB(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	k, n := 33, 21
	b := randMat(r, k*n)
	bT := make([]float32, n*k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT[j*k+p] = b[p*n+j]
		}
	}
	x := randMat(r, k)
	want := make([]float32, n)
	got := make([]float32, n)
	GemmPacked(1, x, PackB(k, n, b), want)
	GemmPacked(1, x, PackBTrans(k, n, bT), got)
	if i, ok := bitsEqual(want, got); !ok {
		t.Errorf("PackBTrans differs from PackB at %d", i)
	}
}

func TestGemmPackedPooledMatchesSerialBitForBit(t *testing.T) {
	// Both split regimes (rows when m >= workers, column panels when
	// m < workers) must reproduce the serial kernel exactly, for FP32 and
	// BF16 packs, across worker counts.
	r := rand.New(rand.NewSource(15))
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		var job PackedJob
		for _, s := range packShapes {
			for _, bf16 := range []bool{false, true} {
				a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
				var pb *PackedB
				if bf16 {
					pb = PackBBF16(s.k, s.n, b)
				} else {
					pb = PackB(s.k, s.n, b)
				}
				want := make([]float32, s.m*s.n)
				got := make([]float32, s.m*s.n)
				GemmPacked(s.m, a, pb, want)
				GemmPackedPooled(p, &job, s.m, a, pb, got)
				if i, ok := bitsEqual(want, got); !ok {
					t.Errorf("shape %+v workers=%d bf16=%v: pooled differs at %d",
						s, workers, bf16, i)
				}
			}
		}
		p.Close()
	}
}

func TestGemmParallelSmallMMatchesNaive(t *testing.T) {
	// Regression for the small-M serialization bug: workers > m must split
	// columns, and the result must still equal the serial kernel.
	r := rand.New(rand.NewSource(16))
	for _, s := range []struct{ m, n, k int }{
		{1, 128, 96}, {1, 7, 5}, {2, 300, 64}, {3, 17, 33},
	} {
		for _, workers := range []int{2, 4, 16, 200} {
			a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
			want := make([]float32, s.m*s.n)
			got := make([]float32, s.m*s.n)
			GemmBlocked(s.m, s.n, s.k, a, b, want)
			GemmParallel(s.m, s.n, s.k, a, b, got, workers)
			if i, ok := bitsEqual(want, got); !ok {
				t.Errorf("shape %+v workers=%d: column-split differs at %d", s, workers, i)
			}
		}
	}
}

func TestGemmTileBF16ParallelSmallMMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, s := range []struct{ m, n, k int }{
		{1, 128, 96}, {1, 48, 32}, {4, 170, 64}, {15, 33, 17},
	} {
		for _, workers := range []int{2, 4, 16, 200} {
			a, b := randMat(r, s.m*s.k), randMat(r, s.k*s.n)
			want := make([]float32, s.m*s.n)
			got := make([]float32, s.m*s.n)
			GemmTileBF16(s.m, s.n, s.k, a, b, want)
			GemmTileBF16Parallel(s.m, s.n, s.k, a, b, got, workers)
			if i, ok := bitsEqual(want, got); !ok {
				t.Errorf("shape %+v workers=%d: column-split tile differs at %d", s, workers, i)
			}
		}
	}
}

func TestPoolSharedByConcurrentCallers(t *testing.T) {
	// Two (or more) engines share one pool in the gateway; concurrent Run
	// calls must interleave safely. Run under -race in CI.
	p := NewPool(4)
	defer p.Close()
	r := rand.New(rand.NewSource(18))
	k, n := 64, 97
	b := randMat(r, k*n)
	pb := PackBBF16(k, n, b)

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for g := 0; g < callers; g++ {
		a := randMat(r, 8*k)
		want := make([]float32, 8*n)
		GemmPacked(8, a, pb, want)
		wg.Add(1)
		go func(a, want []float32) {
			defer wg.Done()
			var job PackedJob
			got := make([]float32, 8*n)
			for iter := 0; iter < 50; iter++ {
				for _, m := range []int{1, 3, 8} {
					GemmPackedPooled(p, &job, m, a, pb, got)
				}
				GemmPackedPooled(p, &job, 8, a, pb, got)
				if i, ok := bitsEqual(want, got); !ok {
					errs <- "shared-pool result differs at index " + string(rune('0'+i))
					return
				}
			}
		}(a, want)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestPoolRunCountsParts(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var calls [7]int32
	var mu sync.Mutex
	task := taskFunc(func(part, parts int) {
		mu.Lock()
		calls[part]++
		mu.Unlock()
	})
	p.Run(task, len(calls))
	for i, c := range calls {
		if c != 1 {
			t.Errorf("part %d ran %d times", i, c)
		}
	}
}

type taskFunc func(part, parts int)

func (f taskFunc) RunPart(part, parts int) { f(part, parts) }

func TestGemmPackedPooledZeroAllocSteadyState(t *testing.T) {
	// The decode hot path must not allocate: the PackedJob owns all
	// scratch and pool dispatch recycles its descriptors.
	r := rand.New(rand.NewSource(19))
	k, n := 64, 256
	b := randMat(r, k*n)
	pb := PackBBF16(k, n, b)
	a := randMat(r, 8*k)
	c := make([]float32, 8*n)
	p := NewPool(2)
	defer p.Close()
	job := &PackedJob{}
	GemmPackedPooled(p, job, 8, a, pb, c) // warm the rounding buffer
	allocs := testing.AllocsPerRun(20, func() {
		GemmPackedPooled(p, job, 8, a, pb, c)
		GemmPackedPooled(p, job, 1, a, pb, c)
	})
	if allocs != 0 {
		t.Errorf("GemmPackedPooled allocated %v times per run, want 0", allocs)
	}
}

func TestPackedBBytesAndPanels(t *testing.T) {
	pb := PackB(10, 33, make([]float32, 10*33))
	if got, want := pb.Panels(), 3; got != want {
		t.Errorf("Panels() = %d, want %d", got, want)
	}
	if got, want := pb.Bytes(), int64(3*10*PanelCols*4); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
	if runtime.GOMAXPROCS(0) < 1 {
		t.Fatal("impossible")
	}
}
