package kernels

import (
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// The parallel kernels split rows of A across workers when M is large
// (prefill) and fall back to splitting output columns of C when M is
// smaller than the worker count (decode: M is the batch size, often 1).
// Without the column split a decode GEMV ran on a single core no matter
// how many were available — the small-M serialization bug this package
// now fixes. Either split is bit-identical to the serial kernel because
// each output element's FP32 accumulation order is unchanged.

// GemmParallel computes C = A·B splitting rows of A across workers
// goroutines (0 means GOMAXPROCS), mirroring how IPEX parallelizes GEMMs
// across physical cores. When M < workers it splits the N dimension
// instead so small-batch decode still uses every core.
func GemmParallel(m, n, k int, a, b, c []float32, workers int) {
	checkDims(m, n, k, a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || m == 0 {
		GemmBlocked(m, n, k, a, b, c)
		return
	}
	var wg sync.WaitGroup
	if workers <= m {
		rowsPer := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * rowsPer
			if lo >= m {
				break
			}
			hi := min(lo+rowsPer, m)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				GemmBlocked(hi-lo, n, k, a[lo*k:hi*k], b, c[lo*n:hi*n])
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	// M < workers: column split.
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		GemmBlocked(m, n, k, a, b, c)
		return
	}
	colsPer := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * colsPer
		if lo >= n {
			break
		}
		hi := min(lo+colsPer, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmBlockedCols(m, n, k, a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// GemmTileBF16Parallel runs the AMX-emulating tile kernel with rows split
// across workers goroutines, the closest software analog of a multi-core
// AMX GEMM. When M spans fewer row tiles than workers it splits column
// tiles instead, so decode-shape GEMVs parallelize. Operands are rounded
// to bf16 once up front (shared by all workers) rather than once per
// worker band, and results are bit-identical to the serial kernel.
func GemmTileBF16Parallel(m, n, k int, a, b, c []float32, workers int) {
	checkDims(m, n, k, a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rowTiles := (m + TileRows - 1) / TileRows
	colTiles := (n + TileRows - 1) / TileRows
	if workers <= 1 || m == 0 || (rowTiles <= 1 && colTiles <= 1) {
		GemmTileBF16(m, n, k, a, b, c)
		return
	}
	ab := roundBF16Slice(a[:m*k])
	bb := make([]float32, k*n)
	roundBF16Parallel(bb, b[:k*n], workers)
	var wg sync.WaitGroup
	if workers <= rowTiles {
		tilesPer := (rowTiles + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * tilesPer * TileRows
			if lo >= m {
				break
			}
			hi := min(lo+tilesPer*TileRows, m)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				tileBF16Core(hi-lo, n, k, ab[lo*k:hi*k], bb, c[lo*n:hi*n], 0, n)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	// Fewer row tiles than workers: split column tiles (tile-aligned bands).
	parts := min(workers, colTiles)
	tilesPer := (colTiles + parts - 1) / parts
	for w := 0; w < parts; w++ {
		lo := w * tilesPer * TileRows
		if lo >= n {
			break
		}
		hi := min(lo+tilesPer*TileRows, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			tileBF16Core(m, n, k, ab, bb, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// roundBF16Parallel rounds src to bf16 into dst, splitting the elementwise
// work across workers — weight conversion is the dominant cost of the
// unpacked tile kernel at decode shapes, so it must not stay serial.
func roundBF16Parallel(dst, src []float32, workers int) {
	n := len(src)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, v := range src {
			dst[i] = tensor.RoundBF16(v)
		}
		return
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= n {
			break
		}
		hi := min(lo+per, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dst[i] = tensor.RoundBF16(src[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}
