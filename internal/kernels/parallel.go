package kernels

import (
	"runtime"
	"sync"
)

// GemmParallel computes C = A·B splitting rows of A across workers
// goroutines (0 means GOMAXPROCS). Each worker runs the cache-blocked
// kernel on its row band, mirroring how IPEX parallelizes GEMMs across
// physical cores.
func GemmParallel(m, n, k int, a, b, c []float32, workers int) {
	checkDims(m, n, k, a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		GemmBlocked(m, n, k, a, b, c)
		return
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			GemmBlocked(hi-lo, n, k, a[lo*k:hi*k], b, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}

// GemmTileBF16Parallel runs the AMX-emulating tile kernel with rows split
// across workers goroutines, the closest software analog of a multi-core
// AMX GEMM.
func GemmTileBF16Parallel(m, n, k int, a, b, c []float32, workers int) {
	checkDims(m, n, k, a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split on tile-row boundaries so every worker computes whole tiles.
	tiles := (m + TileRows - 1) / TileRows
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 {
		GemmTileBF16(m, n, k, a, b, c)
		return
	}
	var wg sync.WaitGroup
	tilesPer := (tiles + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * tilesPer * TileRows
		if lo >= m {
			break
		}
		hi := min(lo+tilesPer*TileRows, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			GemmTileBF16(hi-lo, n, k, a[lo*k:hi*k], b, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}
