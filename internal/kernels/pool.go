package kernels

import (
	"runtime"
	"sync/atomic"
)

// Pool is a persistent worker pool for compute kernels. It is created once
// (per engine, or shared by several engines) and reused for every GEMM and
// attention dispatch, replacing the goroutine-per-call fan-out of the
// legacy parallel kernels: decode issues hundreds of small GEMMs per
// token, and re-spawning goroutines for each one costs more than the
// kernel itself at decode shapes. Workers block on a channel between
// dispatches, so an idle pool burns no CPU.
//
// Run is safe for concurrent use from multiple goroutines (two engines can
// share one pool); work items interleave in the queue and every caller
// helps execute its own parts. Steady-state dispatch performs zero heap
// allocations: invocation descriptors are recycled through a fixed
// free list.
//
// Tasks must not call Pool.Run from inside RunPart — nested dispatch on
// the same pool can deadlock the workers.

// Task is a divisible unit of work: RunPart is called once for each part
// in [0, parts), possibly concurrently.
type Task interface {
	RunPart(part, parts int)
}

// invocation is one Run call in flight. Instances are recycled via
// Pool.free so steady-state dispatch never allocates.
type invocation struct {
	task    Task
	parts   int
	pending atomic.Int32
	fin     chan struct{}
}

func (inv *invocation) runPart(part int) {
	inv.task.RunPart(part, inv.parts)
	if inv.pending.Add(-1) == 0 {
		inv.fin <- struct{}{}
	}
}

// workItem is one part of an invocation, sent by value to workers.
type workItem struct {
	inv  *invocation
	part int
}

// Pool is a fixed set of worker goroutines executing Tasks.
type Pool struct {
	workers int
	work    chan workItem
	free    chan *invocation
}

// maxInflight bounds concurrently executing Run calls (further callers
// block until a descriptor frees up); it only needs to exceed the number
// of engines realistically sharing one pool.
const maxInflight = 64

// NewPool creates a pool with the given worker count (0 means GOMAXPROCS).
// A pool of ≤1 workers spawns no goroutines and runs every Task inline.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers <= 1 {
		return p
	}
	p.work = make(chan workItem, workers*8)
	p.free = make(chan *invocation, maxInflight)
	for i := 0; i < maxInflight; i++ {
		p.free <- &invocation{fin: make(chan struct{}, 1)}
	}
	for i := 0; i < workers; i++ {
		go poolWorker(p.work)
	}
	// Workers reference only the channel, so an abandoned Pool is
	// collectable; the finalizer stops its goroutines.
	runtime.SetFinalizer(p, func(p *Pool) { close(p.work) })
	return p
}

// poolWorker deliberately captures only the channel (not the Pool) so the
// finalizer above can run.
func poolWorker(work chan workItem) {
	for it := range work {
		it.inv.runPart(it.part)
	}
}

// Workers returns the pool's parallel width; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes t.RunPart(i, parts) for every i in [0, parts), blocking
// until all parts complete. The calling goroutine executes part 0 itself
// (and any part that cannot be enqueued without blocking), so a saturated
// pool degrades to inline execution instead of stalling.
func (p *Pool) Run(t Task, parts int) {
	if parts <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || parts == 1 {
		for i := 0; i < parts; i++ {
			t.RunPart(i, parts)
		}
		return
	}
	inv := <-p.free
	inv.task, inv.parts = t, parts
	inv.pending.Store(int32(parts))
	for i := 1; i < parts; i++ {
		select {
		case p.work <- workItem{inv: inv, part: i}:
		default:
			inv.runPart(i)
		}
	}
	inv.runPart(0)
	<-inv.fin
	inv.task = nil
	p.free <- inv
}

// Close stops the pool's workers. Run must not be called after Close; it
// is optional (an unreferenced pool is cleaned up by a finalizer).
func (p *Pool) Close() {
	if p == nil || p.workers <= 1 {
		return
	}
	runtime.SetFinalizer(p, nil)
	close(p.work)
}
