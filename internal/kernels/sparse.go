package kernels

import (
	"fmt"
	"math/bits"
)

// Sparsity-aware panel packing (SparAMX style). Unstructured weight
// sparsity cannot feed a dense tile kernel, but the panel layout makes a
// cheap structured form available for free: within one column panel, a
// k-row whose PanelCols values are all zero contributes nothing to any
// output in the panel. PackBSparse records a per-panel bitmap of the
// nonzero k-rows and stores only those rows, so the inner GEMM loop
// streams sparsity-proportional bytes — the decode-GEMV bandwidth lever
// SparAMX applies at the AMX tile level.
//
// Skipping exactly-zero rows leaves each output element's FP32
// accumulation order unchanged (the skipped terms are exact zeros), so
// results are bit-identical to GemmPacked over the same matrix.

// sparsePanel is one column panel: a bitmap of the k-rows present and
// their values, compacted in ascending-k order, PanelCols wide each.
type sparsePanel struct {
	bitmap []uint64  // bit p set ⇒ k-row p is stored
	rows   []float32 // nnz × PanelCols, ascending k
}

// PackedBSparse is a weight matrix packed into column panels with
// all-zero k-rows elided per panel.
type PackedBSparse struct {
	K, N    int
	panels  []sparsePanel
	nnzRows int // total stored rows across panels (for Density)
}

// Panels returns the number of column panels.
func (pb *PackedBSparse) Panels() int { return len(pb.panels) }

// Density returns the fraction of panel rows actually stored (1 = fully
// dense, lower = more bytes elided from the decode stream).
func (pb *PackedBSparse) Density() float64 {
	total := pb.K * len(pb.panels)
	if total == 0 {
		return 0
	}
	return float64(pb.nnzRows) / float64(total)
}

// Bytes returns the packed storage footprint (values + bitmaps).
func (pb *PackedBSparse) Bytes() int64 {
	var b int64
	for _, p := range pb.panels {
		b += int64(len(p.rows))*4 + int64(len(p.bitmap))*8
	}
	return b
}

// PackBSparse packs row-major B (k×n) into sparsity-aware column panels:
// within each panel, k-rows whose values are all exactly zero are elided
// and a bitmap records which rows remain.
func PackBSparse(k, n int, b []float32) *PackedBSparse {
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackBSparse %dx%d: slice too short (%d)", k, n, len(b)))
	}
	panels := (n + PanelCols - 1) / PanelCols
	pb := &PackedBSparse{K: k, N: n, panels: make([]sparsePanel, panels)}
	words := (k + 63) / 64
	for pn := 0; pn < panels; pn++ {
		j0 := pn * PanelCols
		w := min(PanelCols, n-j0)
		sp := &pb.panels[pn]
		sp.bitmap = make([]uint64, words)
		for p := 0; p < k; p++ {
			zero := true
			for j := 0; j < w; j++ {
				if b[p*n+j0+j] != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
			sp.bitmap[p/64] |= 1 << (p % 64)
			row := make([]float32, PanelCols)
			for j := 0; j < w; j++ {
				row[j] = b[p*n+j0+j]
			}
			sp.rows = append(sp.rows, row...)
			pb.nnzRows++
		}
	}
	return pb
}

// GemmSparse computes C = A·B (A row-major m×K, C m×N) over a
// sparsity-packed B. Bit-identical to GemmPacked over the same matrix:
// the elided rows are exact zeros and the surviving accumulation order
// is unchanged.
func GemmSparse(m int, a []float32, pb *PackedBSparse, c []float32) {
	if len(a) < m*pb.K || len(c) < m*pb.N {
		panic(fmt.Sprintf("kernels: GemmSparse %dx%dx%d: slices too short (a=%d c=%d)",
			m, pb.N, pb.K, len(a), len(c)))
	}
	k, n := pb.K, pb.N
	for pn := range pb.panels {
		sp := &pb.panels[pn]
		j0 := pn * PanelCols
		w := min(PanelCols, n-j0)
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			var acc [PanelCols]float32
			ri := 0
			for wi, word := range sp.bitmap {
				base := wi * 64
				for word != 0 {
					p := base + bits.TrailingZeros64(word)
					word &= word - 1
					av := arow[p]
					prow := sp.rows[ri*PanelCols : ri*PanelCols+PanelCols]
					ri++
					for j := range acc {
						acc[j] += av * prow[j]
					}
				}
			}
			copy(c[i*n+j0:i*n+j0+w], acc[:w])
		}
	}
}

// GemvSparse computes y = x·B for one activation row — the decode GEMV
// shape where elided bytes translate directly into tok/s.
func GemvSparse(x []float32, pb *PackedBSparse, y []float32) {
	GemmSparse(1, x, pb, y)
}
