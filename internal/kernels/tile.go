package kernels

import (
	"repro/internal/tensor"
)

// Intel AMX tile geometry (§II-D of the paper): a tile register is 16 rows
// of 64 bytes. For BF16 that is 16×32 elements; TMUL TDPBF16PS multiplies
// a 16×32 BF16 A-tile by a 16×32 BF16 B-tile (interpreted as 32×16 via the
// VNNI pair layout) accumulating into a 16×16 FP32 C-tile.
const (
	// TileRows is the number of rows in an AMX tile register.
	TileRows = 16
	// TileColsBF16 is the number of BF16 elements per tile row (64 bytes).
	TileColsBF16 = 32
	// TileColsInt8 is the number of INT8 elements per tile row.
	TileColsInt8 = 64
)

// GemmTileBF16 computes C = A·B emulating the AMX TMUL dataflow: inputs
// are rounded to bfloat16, the matrices are processed in 16×32 (A) and
// 32×16 (B) tiles, and products are accumulated in FP32. The result is
// bit-faithful to what an AMX kernel computing in BF16 would produce
// (up to FP32 accumulation order within a tile column, which we fix as
// ascending k).
func GemmTileBF16(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	// Pre-round both operands to bf16 once, as a real kernel would convert
	// (or load pre-converted weights) before issuing TMUL.
	ab := roundBF16Slice(a[:m*k])
	bb := roundBF16Slice(b[:k*n])
	tileBF16Core(m, n, k, ab, bb, c, 0, n)
}

func roundBF16Slice(src []float32) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = tensor.RoundBF16(v)
	}
	return dst
}

// tileBF16Core runs the AMX tile loops over pre-rounded operands,
// restricted to output columns [jLo, jHi). jLo must be a multiple of
// TileRows so tile boundaries — and hence FP32 accumulation order — match
// the full kernel exactly, making row- and column-banded parallel runs
// bit-identical to the serial kernel.
func tileBF16Core(m, n, k int, ab, bb, c []float32, jLo, jHi int) {
	for i := 0; i < m; i++ {
		crow := c[i*n : (i+1)*n]
		for j := jLo; j < jHi; j++ {
			crow[j] = 0
		}
	}
	var acc [TileRows * TileRows]float32 // one 16×16 FP32 accumulator tile
	for i0 := 0; i0 < m; i0 += TileRows {
		iMax := min(i0+TileRows, m)
		for j0 := jLo; j0 < jHi; j0 += TileRows {
			jMax := min(j0+TileRows, jHi)
			for idx := range acc {
				acc[idx] = 0
			}
			for p0 := 0; p0 < k; p0 += TileColsBF16 {
				pMax := min(p0+TileColsBF16, k)
				// TDPBF16PS: acc[i][j] += Σ_p A[i][p]*B[p][j] over the
				// 32-deep tile, accumulated in FP32.
				for i := i0; i < iMax; i++ {
					arow := ab[i*k:]
					for p := p0; p < pMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := bb[p*n:]
						ti := (i - i0) * TileRows
						for j := j0; j < jMax; j++ {
							acc[ti+(j-j0)] += av * brow[j]
						}
					}
				}
			}
			// Tile store.
			for i := i0; i < iMax; i++ {
				ti := (i - i0) * TileRows
				for j := j0; j < jMax; j++ {
					c[i*n+j] = acc[ti+(j-j0)]
				}
			}
		}
	}
}

// GemmInt8 computes C = scaleA·scaleB·(Aq·Bq) emulating the AMX INT8 path
// (TDPBSSD): int8×int8 products accumulate into int32 tiles, then a single
// dequantization scales to FP32.
func GemmInt8(m, n, k int, aq []int8, scaleA float32, bq []int8, scaleB float32, c []float32) {
	if len(aq) < m*k || len(bq) < k*n || len(c) < m*n {
		panic("kernels: GemmInt8: slices too short")
	}
	scale := scaleA * scaleB
	for i := 0; i < m; i++ {
		arow := aq[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			var sum int32
			for p := 0; p < k; p++ {
				sum += int32(arow[p]) * int32(bq[p*n+j])
			}
			c[i*n+j] = float32(sum) * scale
		}
	}
}
