// Package kvpool is a paged KV-cache allocator in the style of vLLM's
// PagedAttention (related work §VII-C). The paper shows KV-cache demand
// growing linearly with batch × sequence length until it dominates memory
// (§III, Fig 7); contiguous per-sequence preallocation wastes most of that
// reservation on requests that finish early. Paging the cache into fixed
// blocks allocated on demand — with copy-on-write sharing of common
// prefixes — lets a memory budget admit far more concurrent sequences.
package kvpool

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Pool manages a fixed budget of KV-cache blocks. A block holds BlockSize
// token positions of K and V for every layer of the model. Blocks are
// reference-counted so sequences can share prefix blocks copy-on-write.
//
// A Pool is safe for concurrent use: sequences owned by different
// goroutines may allocate, fork and free against the same pool (the live
// gateway's lanes and beam-search workers do exactly that). An individual
// Sequence remains single-owner — two goroutines must not Append to or
// Free the same Sequence concurrently.
type Pool struct {
	cfg       model.Config
	dt        tensor.DType
	blockSize int
	total     int

	mu       sync.Mutex
	limit    int   // usable-block cap; < total under memory pressure
	refs     []int // refcount per block; 0 = free
	freeList []int

	allocs    int // statistics
	cowCopies int
}

// BytesPerBlock returns the memory one block occupies.
func (p *Pool) BytesPerBlock() int64 {
	return p.cfg.KVBytesPerTokenPerLayer(p.dt) * int64(p.cfg.Layers) * int64(p.blockSize)
}

// BlockSize returns the block granularity in token positions.
func (p *Pool) BlockSize() int { return p.blockSize }

// New sizes a pool for a model under a memory budget.
func New(cfg model.Config, dt tensor.DType, blockSize int, budgetBytes int64) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("kvpool: non-positive block size %d", blockSize)
	}
	p := &Pool{cfg: cfg, dt: dt, blockSize: blockSize}
	per := p.BytesPerBlock()
	if per <= 0 || budgetBytes < per {
		return nil, fmt.Errorf("kvpool: budget %d below one block (%d)", budgetBytes, per)
	}
	p.total = int(budgetBytes / per)
	p.limit = p.total
	p.refs = make([]int, p.total)
	p.freeList = make([]int, p.total)
	for i := range p.freeList {
		p.freeList[p.total-1-i] = i // allocate low block IDs first
	}
	return p, nil
}

// TotalBlocks returns the pool capacity in blocks.
func (p *Pool) TotalBlocks() int { return p.total }

// FreeBlocks returns the currently unallocated block count.
func (p *Pool) FreeBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.freeList)
}

// SetEffectiveCapacity caps the usable blocks at n, clamped to [0, total].
// Blocks already allocated beyond the cap stay allocated; new allocations
// fail with ErrOutOfBlocks until usage falls under the cap again. This is
// the mem-pressure fault injector's hook: shrinking the effective pool at
// runtime models a co-tenant eating the platform's memory.
func (p *Pool) SetEffectiveCapacity(n int) {
	if n < 0 {
		n = 0
	}
	if n > p.total {
		n = p.total
	}
	p.mu.Lock()
	p.limit = n
	p.mu.Unlock()
}

// EffectiveBlocks returns the current usable-block cap (total when no
// pressure is applied).
func (p *Pool) EffectiveBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limit
}

// Utilization returns the fraction of blocks in use.
func (p *Pool) Utilization() float64 {
	if p.total == 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return 1 - float64(len(p.freeList))/float64(p.total)
}

// availableLocked returns how many blocks may be allocated right now:
// the free list, further capped by the effective-capacity limit.
func (p *Pool) availableLocked() int {
	used := p.total - len(p.freeList)
	avail := p.limit - used
	if avail < 0 {
		avail = 0
	}
	if avail > len(p.freeList) {
		avail = len(p.freeList)
	}
	return avail
}

func (p *Pool) allocBlockLocked() (int, error) {
	if p.availableLocked() == 0 {
		return 0, ErrOutOfBlocks
	}
	id := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	p.refs[id] = 1
	p.allocs++
	return id, nil
}

func (p *Pool) releaseBlockLocked(id int) {
	p.refs[id]--
	if p.refs[id] < 0 {
		panic(fmt.Sprintf("kvpool: double free of block %d", id))
	}
	if p.refs[id] == 0 {
		p.freeList = append(p.freeList, id)
	}
}

// ErrOutOfBlocks reports pool exhaustion — the serving layer's signal to
// queue, preempt, or swap (vLLM's recompute/swap policies).
var ErrOutOfBlocks = fmt.Errorf("kvpool: out of blocks")

// Sequence is one request's block table.
type Sequence struct {
	pool   *Pool
	blocks []int
	tokens int
	freed  bool
}

// NewSequence starts an empty sequence.
func (p *Pool) NewSequence() *Sequence {
	return &Sequence{pool: p}
}

// Append reserves capacity for n more token positions, allocating blocks
// as needed. On exhaustion it returns ErrOutOfBlocks with the sequence
// unchanged.
func (s *Sequence) Append(n int) error {
	if n < 0 {
		return fmt.Errorf("kvpool: negative append %d", n)
	}
	p := s.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return fmt.Errorf("kvpool: append to freed sequence")
	}
	needTokens := s.tokens + n
	needBlocks := (needTokens + p.blockSize - 1) / p.blockSize
	add := needBlocks - len(s.blocks)
	if add > p.availableLocked() {
		return ErrOutOfBlocks
	}
	for i := 0; i < add; i++ {
		id, err := p.allocBlockLocked()
		if err != nil {
			return err // unreachable given the precheck, kept for safety
		}
		s.blocks = append(s.blocks, id)
	}
	s.tokens = needTokens
	return nil
}

// Tokens returns the sequence's current length in tokens.
func (s *Sequence) Tokens() int {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return s.tokens
}

// Blocks returns the sequence's block table (not to be modified).
func (s *Sequence) Blocks() []int { return s.blocks }

// WastedSlots returns reserved-but-unused token positions in the last
// block — paged allocation's only internal fragmentation.
func (s *Sequence) WastedSlots() int {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	if len(s.blocks) == 0 {
		return 0
	}
	return len(s.blocks)*s.pool.blockSize - s.tokens
}

// Fork creates a copy-on-write child sharing every block (prefix sharing
// for beam search or common system prompts). The child starts at the same
// token length; diverging appends allocate fresh blocks. Multiple
// goroutines may Fork the same parent concurrently as long as none of
// them mutates it at the same time.
func (s *Sequence) Fork() (*Sequence, error) {
	p := s.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return nil, fmt.Errorf("kvpool: fork of freed sequence")
	}
	for _, id := range s.blocks {
		p.refs[id]++
	}
	child := &Sequence{
		pool:   p,
		blocks: append([]int(nil), s.blocks...),
		tokens: s.tokens,
	}
	return child, nil
}

// WriteLast marks the last block as written. If the block is shared
// (ref > 1), it is copied first (copy-on-write) so siblings keep their
// version; the method returns whether a copy happened.
func (s *Sequence) WriteLast() (copied bool, err error) {
	p := s.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return false, fmt.Errorf("kvpool: write to freed sequence")
	}
	if len(s.blocks) == 0 {
		return false, fmt.Errorf("kvpool: write to empty sequence")
	}
	last := len(s.blocks) - 1
	id := s.blocks[last]
	if p.refs[id] == 1 {
		return false, nil
	}
	fresh, err := p.allocBlockLocked()
	if err != nil {
		return false, err
	}
	p.releaseBlockLocked(id) // drop our shared reference
	s.blocks[last] = fresh
	p.cowCopies++
	return true, nil
}

// RetainBlocks takes an extra reference on each listed block so a holder
// other than a Sequence (the prefix cache's radix tree) can keep them
// alive after the donating sequence frees. Every block must currently be
// allocated; retaining a free block is a programming error and panics,
// matching the double-free guard.
func (p *Pool) RetainBlocks(ids []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if id < 0 || id >= p.total || p.refs[id] == 0 {
			panic(fmt.Sprintf("kvpool: retain of free block %d", id))
		}
		p.refs[id]++
	}
}

// ReleaseBlockIDs drops one reference from each listed block (the prefix
// cache's eviction path). Blocks whose count reaches zero return to the
// free list. Releasing an unallocated block panics, like double frees.
func (p *Pool) ReleaseBlockIDs(ids []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		p.releaseBlockLocked(id)
	}
}

// BlockRef reports the current reference count of a block (tests and the
// cache's accounting checks).
func (p *Pool) BlockRef(id int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= p.total {
		return 0
	}
	return p.refs[id]
}

// AdoptPrefix builds a new sequence that shares the given prefix blocks
// copy-on-write, taking one reference on each — a cross-request Fork for
// the prefix cache, where the donor sequence may already be gone and only
// the radix tree keeps the blocks alive. tokens is the prefix length the
// adopted blocks cover; it must fit exactly in the listed blocks so that
// subsequent Appends never write into a shared partially-filled block
// without CoW. Every listed block must be live.
func (p *Pool) AdoptPrefix(blocks []int, tokens int) (*Sequence, error) {
	if tokens < 0 || tokens > len(blocks)*p.blockSize {
		return nil, fmt.Errorf("kvpool: adopt of %d tokens over %d blocks", tokens, len(blocks))
	}
	if tokens != len(blocks)*p.blockSize {
		return nil, fmt.Errorf("kvpool: adopted prefix must fill its blocks (%d tokens, %d blocks of %d)",
			tokens, len(blocks), p.blockSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range blocks {
		if id < 0 || id >= p.total || p.refs[id] == 0 {
			panic(fmt.Sprintf("kvpool: adopt of free block %d", id))
		}
	}
	for _, id := range blocks {
		p.refs[id]++
	}
	return &Sequence{
		pool:   p,
		blocks: append([]int(nil), blocks...),
		tokens: tokens,
	}, nil
}

// Free releases every block reference. Double frees are rejected.
//
// Audit note (fork/preempt interaction): a forked or adopted child that
// is preempted-by-recompute before its first decode step frees here
// having never called WriteLast, so every one of its block references is
// still a shared reference. releaseBlockLocked only returns a block to
// the free list when its count reaches zero, so the parent (or the
// prefix tree's retained reference) keeps the block alive and the
// child's early death leaks nothing — see TestForkPreemptBeforeDecode.
func (s *Sequence) Free() error {
	p := s.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return fmt.Errorf("kvpool: double free of sequence")
	}
	for _, id := range s.blocks {
		p.releaseBlockLocked(id)
	}
	s.blocks = nil
	s.freed = true
	return nil
}

// Stats summarizes pool activity.
type Stats struct {
	TotalBlocks, FreeBlocks int
	EffectiveBlocks         int
	Allocations             int
	CoWCopies               int
}

// Stats returns a snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		TotalBlocks: p.total, FreeBlocks: len(p.freeList),
		EffectiveBlocks: p.limit,
		Allocations:     p.allocs, CoWCopies: p.cowCopies,
	}
}

// MaxContiguousSequences returns how many sequences of maxLen tokens a
// budget admits when each sequence preallocates its full contiguous
// reservation — the baseline the paper's Fig 7 pressure implies.
func MaxContiguousSequences(cfg model.Config, dt tensor.DType, budgetBytes int64, maxLen int) int {
	per := cfg.KVCacheBytes(maxLen, 1, dt)
	if per <= 0 {
		return 0
	}
	return int(budgetBytes / per)
}
