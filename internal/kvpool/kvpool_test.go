package kvpool

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/tensor"
)

func newPool(t *testing.T, blocks int) *Pool {
	t.Helper()
	cfg := model.Tiny(model.OPT)
	tmp, err := New(cfg, tensor.BF16, 16, 1)
	if err == nil {
		t.Fatal("1-byte budget must fail")
		_ = tmp
	}
	per := (&Pool{cfg: cfg, dt: tensor.BF16, blockSize: 16}).BytesPerBlock()
	p, err := New(cfg, tensor.BF16, 16, per*int64(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBlocks() != blocks {
		t.Fatalf("pool sized %d blocks, want %d", p.TotalBlocks(), blocks)
	}
	return p
}

func TestPoolSizing(t *testing.T) {
	p := newPool(t, 8)
	if p.FreeBlocks() != 8 || p.Utilization() != 0 {
		t.Error("fresh pool state wrong")
	}
	if _, err := New(model.Config{}, tensor.BF16, 16, 1<<20); err == nil {
		t.Error("invalid config must fail")
	}
	if _, err := New(model.Tiny(model.OPT), tensor.BF16, 0, 1<<20); err == nil {
		t.Error("zero block size must fail")
	}
}

func TestAppendAllocatesBlocks(t *testing.T) {
	p := newPool(t, 4)
	s := p.NewSequence()
	if err := s.Append(10); err != nil { // 10 tokens → 1 block of 16
		t.Fatal(err)
	}
	if len(s.Blocks()) != 1 || s.Tokens() != 10 || s.WastedSlots() != 6 {
		t.Errorf("state: blocks=%d tokens=%d wasted=%d", len(s.Blocks()), s.Tokens(), s.WastedSlots())
	}
	if err := s.Append(6); err != nil { // fills the block exactly
		t.Fatal(err)
	}
	if len(s.Blocks()) != 1 || s.WastedSlots() != 0 {
		t.Error("exact fill must not allocate")
	}
	if err := s.Append(1); err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks()) != 2 {
		t.Error("17th token must open block 2")
	}
	if p.FreeBlocks() != 2 {
		t.Errorf("pool free = %d, want 2", p.FreeBlocks())
	}
}

func TestExhaustionAtomic(t *testing.T) {
	p := newPool(t, 2)
	s := p.NewSequence()
	if err := s.Append(32); err != nil {
		t.Fatal(err)
	}
	s2 := p.NewSequence()
	if err := s2.Append(1); err != ErrOutOfBlocks {
		t.Fatalf("expected ErrOutOfBlocks, got %v", err)
	}
	// Failed append must not leak state.
	if s2.Tokens() != 0 || len(s2.Blocks()) != 0 {
		t.Error("failed append mutated sequence")
	}
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(1); err != nil {
		t.Errorf("append after free must succeed: %v", err)
	}
}

func TestFreeAndDoubleFree(t *testing.T) {
	p := newPool(t, 4)
	s := p.NewSequence()
	if err := s.Append(40); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 4 {
		t.Error("free must return all blocks")
	}
	if err := s.Free(); err == nil {
		t.Error("double free must fail")
	}
	if err := s.Append(1); err == nil {
		t.Error("append after free must fail")
	}
	if _, err := s.Fork(); err == nil {
		t.Error("fork after free must fail")
	}
	if _, err := s.WriteLast(); err == nil {
		t.Error("write after free must fail")
	}
}

func TestForkSharesBlocks(t *testing.T) {
	p := newPool(t, 8)
	parent := p.NewSequence()
	if err := parent.Append(32); err != nil { // 2 blocks
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 6 {
		t.Errorf("fork must not allocate: free=%d", p.FreeBlocks())
	}
	if child.Tokens() != 32 {
		t.Error("child must inherit length")
	}
	// Freeing the parent keeps shared blocks alive for the child.
	if err := parent.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 6 {
		t.Error("shared blocks must survive parent free")
	}
	if err := child.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 8 {
		t.Error("all blocks must return after both free")
	}
}

func TestCopyOnWrite(t *testing.T) {
	p := newPool(t, 8)
	parent := p.NewSequence()
	if err := parent.Append(20); err != nil { // 2 blocks, last shared
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	copied, err := child.WriteLast()
	if err != nil {
		t.Fatal(err)
	}
	if !copied {
		t.Fatal("write to a shared block must copy")
	}
	if child.Blocks()[1] == parent.Blocks()[1] {
		t.Error("child must own a fresh last block after CoW")
	}
	if child.Blocks()[0] != parent.Blocks()[0] {
		t.Error("unwritten prefix block must stay shared")
	}
	// A second write needs no copy.
	copied, err = child.WriteLast()
	if err != nil || copied {
		t.Errorf("second write must be in place: copied=%v err=%v", copied, err)
	}
	if p.Stats().CoWCopies != 1 {
		t.Errorf("CoW count = %d, want 1", p.Stats().CoWCopies)
	}
}

// TestPagedAdmitsMoreSequences is the package's headline result: under
// the same budget, paged allocation admits many more concurrent
// sequences than contiguous max-length reservations when actual lengths
// are short (the Fig 7 pressure scenario).
func TestPagedAdmitsMoreSequences(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	const maxLen = 64                                  // model.Tiny MaxSeq
	budget := cfg.KVCacheBytes(maxLen, 8, tensor.BF16) // room for 8 full seqs
	contiguous := MaxContiguousSequences(cfg, tensor.BF16, budget, maxLen)
	if contiguous != 8 {
		t.Fatalf("contiguous baseline = %d, want 8", contiguous)
	}
	p, err := New(cfg, tensor.BF16, 16, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Actual requests use 16 of the 64 reserved tokens.
	admitted := 0
	for {
		s := p.NewSequence()
		if err := s.Append(16); err != nil {
			break
		}
		admitted++
	}
	if admitted < 3*contiguous {
		t.Errorf("paged admitted %d sequences, want ≥ %d (3× contiguous)",
			admitted, 3*contiguous)
	}
}

// TestBlockAccountingProperty: any interleaving of appends, forks, CoW
// writes and frees conserves blocks (free + Σ unique refs == total, no
// negative refcounts — enforced by panic on violation).
func TestBlockAccountingProperty(t *testing.T) {
	f := func(script []uint8) bool {
		p, err := New(model.Tiny(model.OPT), tensor.BF16, 16,
			(&Pool{cfg: model.Tiny(model.OPT), dt: tensor.BF16, blockSize: 16}).BytesPerBlock()*12)
		if err != nil {
			return false
		}
		var live []*Sequence
		for _, op := range script {
			switch op % 4 {
			case 0: // new + append
				s := p.NewSequence()
				if s.Append(int(op%37)) == nil {
					live = append(live, s)
				}
			case 1: // append to random live
				if len(live) > 0 {
					_ = live[int(op)%len(live)].Append(int(op % 19))
				}
			case 2: // fork
				if len(live) > 0 {
					if c, err := live[int(op)%len(live)].Fork(); err == nil {
						live = append(live, c)
					}
				}
			case 3: // CoW write or free
				if len(live) == 0 {
					continue
				}
				i := int(op) % len(live)
				if op%8 < 4 {
					_, _ = live[i].WriteLast()
				} else {
					if live[i].Free() != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
		}
		for _, s := range live {
			if s.Free() != nil {
				return false
			}
		}
		return p.FreeBlocks() == p.TotalBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentForkCoW is the beam-search race drill, meaningful under
// -race: many goroutines concurrently fork the same prefilled root (an
// unmutated parent may be forked concurrently per the Sequence contract),
// then diverge on their private children — CoW-writing the shared tail,
// appending, and freeing — while readers hammer the pool's stats. Block
// accounting must balance exactly when everyone is done.
func TestConcurrentForkCoW(t *testing.T) {
	const beams = 16
	p := newPool(t, 40)
	root := p.NewSequence()
	if err := root.Append(20); err != nil { // 2 blocks, tail half-full
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Stats()
				_ = p.FreeBlocks()
				_ = p.Utilization()
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, beams)
	for i := 0; i < beams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child, err := root.Fork()
			if err != nil {
				errCh <- err
				return
			}
			// First write lands on the shared tail block and must copy;
			// subsequent growth and writes are private to this beam.
			if _, err := child.WriteLast(); err != nil {
				errCh <- err
				return
			}
			if err := child.Append(16); err != nil {
				errCh <- err
				return
			}
			if _, err := child.WriteLast(); err != nil {
				errCh <- err
				return
			}
			errCh <- child.Free()
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for i := 0; i < beams; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("beam %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.CoWCopies != beams {
		t.Errorf("CoW copies = %d, want %d (one per beam's first shared-tail write)", st.CoWCopies, beams)
	}
	if err := root.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != p.TotalBlocks() {
		t.Errorf("block accounting drifted: free=%d total=%d", p.FreeBlocks(), p.TotalBlocks())
	}
}

func TestNegativeAppend(t *testing.T) {
	p := newPool(t, 2)
	s := p.NewSequence()
	if err := s.Append(-1); err == nil {
		t.Error("negative append must fail")
	}
	if _, err := s.WriteLast(); err == nil {
		t.Error("write to empty sequence must fail")
	}
}

// TestForkPreemptBeforeDecode is the regression test for the fork/free
// refcount audit: a forked child that is preempted-by-recompute before
// its first decode step (so it never called WriteLast) frees only its
// shared references. The parent's blocks must survive with their counts
// restored, and once the parent frees too the pool must be exactly full.
func TestForkPreemptBeforeDecode(t *testing.T) {
	p := newPool(t, 8)
	parent := p.NewSequence()
	if err := parent.Append(40); err != nil { // 3 blocks
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range parent.Blocks() {
		if got := p.BlockRef(id); got != 2 {
			t.Fatalf("block %d ref %d after fork, want 2", id, got)
		}
	}
	// Preemption-by-recompute: the child dies before any decode write.
	if err := child.Free(); err != nil {
		t.Fatal(err)
	}
	for _, id := range parent.Blocks() {
		if got := p.BlockRef(id); got != 1 {
			t.Fatalf("block %d ref %d after child preempt, want 1", id, got)
		}
	}
	if p.FreeBlocks() != 5 {
		t.Fatalf("free=%d after child preempt, want 5", p.FreeBlocks())
	}
	if err := parent.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 8 {
		t.Fatalf("free=%d after both frees, want 8 (refcount leak)", p.FreeBlocks())
	}
}

// TestRetainAdoptRelease covers the prefix-cache surface: a third party
// retaining blocks keeps them alive after the donor frees; AdoptPrefix
// forks a sequence from retained blocks; releasing every holder returns
// the pool to full.
func TestRetainAdoptRelease(t *testing.T) {
	p := newPool(t, 8)
	donor := p.NewSequence()
	if err := donor.Append(32); err != nil { // 2 full blocks
		t.Fatal(err)
	}
	retained := append([]int(nil), donor.Blocks()...)
	p.RetainBlocks(retained)
	if err := donor.Free(); err != nil {
		t.Fatal(err)
	}
	for _, id := range retained {
		if got := p.BlockRef(id); got != 1 {
			t.Fatalf("retained block %d ref %d, want 1", id, got)
		}
	}
	adopted, err := p.AdoptPrefix(retained, 32)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.Tokens() != 32 || len(adopted.Blocks()) != 2 {
		t.Fatalf("adopted: tokens=%d blocks=%d", adopted.Tokens(), len(adopted.Blocks()))
	}
	if err := adopted.Append(20); err != nil { // grows fresh blocks only
		t.Fatal(err)
	}
	for _, id := range retained {
		if got := p.BlockRef(id); got != 2 {
			t.Fatalf("shared block %d ref %d, want 2", id, got)
		}
	}
	// Tree evicts while the adopted sequence is in flight: blocks live on.
	p.ReleaseBlockIDs(retained)
	for _, id := range retained {
		if got := p.BlockRef(id); got != 1 {
			t.Fatalf("block %d ref %d after tree release, want 1", id, got)
		}
	}
	if err := adopted.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 8 {
		t.Fatalf("free=%d at end, want 8", p.FreeBlocks())
	}
	// A partial last block must be rejected — adopting it would let the
	// child write into shared storage without CoW.
	s := p.NewSequence()
	if err := s.Append(20); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AdoptPrefix(s.Blocks(), 20); err == nil {
		t.Error("adopting a partially-filled prefix must fail")
	}
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
}
