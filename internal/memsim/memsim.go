// Package memsim models the memory subsystem of the CPU servers: HBM/DDR
// tiering under the SPR Max memory modes (flat, cache, HBM-only), the
// quadrant vs. SNC-4 clustering modes, bandwidth scaling with active core
// count, and the UPI penalty of crossing sockets (§II-E, Figs 13–16).
//
// The model prices a working set (weights + KV cache) with an effective
// streaming bandwidth: capacity determines how much of the footprint each
// tier serves, and the tiers' STREAM bandwidths compose harmonically. The
// clustering and socket terms then degrade that bandwidth according to the
// fraction of accesses that leave the local NUMA domain.
package memsim

import (
	"fmt"

	"repro/internal/hw"
)

// MemMode is an SPR Max HBM memory mode (§II-E).
type MemMode int

const (
	// Flat exposes HBM and DDR as separate NUMA nodes; software allocates
	// HBM first (the paper's numactl policy) and spills to DDR.
	Flat MemMode = iota
	// Cache uses HBM as a memory-side cache in front of DDR.
	Cache
	// HBMOnly uses HBM exclusively; the working set must fit in it.
	HBMOnly
	// DDROnly is the plain configuration of CPUs without HBM.
	DDROnly
)

// String returns the mode's conventional name.
func (m MemMode) String() string {
	switch m {
	case Flat:
		return "flat"
	case Cache:
		return "cache"
	case HBMOnly:
		return "hbm-only"
	case DDROnly:
		return "ddr"
	default:
		return fmt.Sprintf("memmode(%d)", int(m))
	}
}

// ClusterMode is an SPR clustering mode (§II-E).
type ClusterMode int

const (
	// Quad presents one NUMA node per socket.
	Quad ClusterMode = iota
	// SNC4 divides a socket into four sub-NUMA clusters. Following the
	// paper's setup (no NUMA-aware allocation inside the framework), a
	// fixed fraction of accesses land in remote sub-clusters.
	SNC4
)

// String returns the mode's conventional name.
func (m ClusterMode) String() string {
	if m == Quad {
		return "quad"
	}
	return "snc"
}

// Calibration constants for effects the paper measures but Table I does
// not spell out. Each is chosen to land the corresponding figure's trend
// (see DESIGN.md shape targets).
const (
	// cacheModeHitBWFrac is the fraction of raw HBM bandwidth available
	// when HBM serves as a memory-side cache (tag lookups and writebacks
	// cost a few percent) — makes flat mode "slightly outperform" cache
	// mode when the working set fits, as in Fig 13.
	cacheModeHitBWFrac = 0.93
	// cacheModeMissBWFrac discounts DDR bandwidth for cache-mode misses,
	// which pay a backfill write into HBM besides the demand read.
	cacheModeMissBWFrac = 0.80
	// sncRemoteFraction is the fraction of accesses that land in a remote
	// sub-NUMA cluster when allocation is not NUMA-aware (3 of 4 domains
	// are remote for uniformly spread data).
	sncRemoteFraction = 0.75
	// sncRemoteBWFrac is the relative bandwidth of a remote sub-NUMA
	// access (mesh hops + remote CHA); drives the snc degradation and the
	// remote-LLC-access counter of Fig 15.
	sncRemoteBWFrac = 0.70
	// crossSocketRemoteFraction is the fraction of accesses served by the
	// other socket when a workload spans two sockets with interleaved
	// data (Fig 16's 96-core case).
	crossSocketRemoteFraction = 0.5
	// serialFraction is the Amdahl serial fraction of the inference
	// runtime's parallel regions; calibrated so 48 cores give the paper's
	// 2.93× prefill speedup over 12 cores (Fig 14).
	serialFraction = 0.011
	// crossSocketSerialFraction replaces serialFraction when threads span
	// sockets: UPI-coherent synchronization is far more expensive.
	crossSocketSerialFraction = 0.05
	// bwSaturationCores: a socket reaches half its STREAM bandwidth with
	// this many active cores; calibrated so 12→48 cores speeds decode by
	// the paper's 2.2× (Fig 14).
	bwSaturationCores = 32
)

// Config is a concrete CPU server configuration: which CPU, how many
// active cores, and the memory/clustering modes.
type Config struct {
	CPU     hw.CPU
	Cores   int
	Mem     MemMode
	Cluster ClusterMode
}

// Name returns the paper's configuration label, e.g. "quad_flat".
func (c Config) Name() string {
	return c.Cluster.String() + "_" + c.Mem.String()
}

// SocketsUsed returns how many sockets the active cores span.
func (c Config) SocketsUsed() int {
	s := (c.Cores + c.CPU.CoresPerSocket - 1) / c.CPU.CoresPerSocket
	if s < 1 {
		s = 1
	}
	if s > c.CPU.Sockets {
		s = c.CPU.Sockets
	}
	return s
}

// Validate reports impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("memsim: non-positive core count %d", c.Cores)
	case c.Cores > c.CPU.CoresPerSocket*c.CPU.Sockets:
		return fmt.Errorf("memsim: %d cores exceed %s's %d", c.Cores, c.CPU.Name,
			c.CPU.CoresPerSocket*c.CPU.Sockets)
	case c.Mem != DDROnly && c.CPU.HBM.CapacityGB == 0:
		return fmt.Errorf("memsim: %s mode requires HBM, %s has none", c.Mem, c.CPU.Name)
	}
	return nil
}

// Bandwidth describes the effective memory bandwidth for a working set,
// with the locality breakdown the counter model consumes.
type Bandwidth struct {
	// EffectiveGBs is the sustained streaming bandwidth for the working
	// set under this configuration, already scaled by active cores.
	EffectiveGBs float64
	// HBMFraction is the fraction of the footprint served from HBM.
	HBMFraction float64
	// RemoteFraction is the fraction of accesses leaving the local NUMA
	// domain (sub-NUMA cluster or socket).
	RemoteFraction float64
	// UPIFraction is the fraction of accesses crossing sockets over UPI.
	UPIFraction float64
}

// coreBWScale returns the fraction of a socket's STREAM bandwidth that
// `cores` active cores can draw, normalized so the full socket draws 1.0.
func coreBWScale(cores, perSocket int) float64 {
	f := func(c float64) float64 { return c / (c + bwSaturationCores) }
	return f(float64(cores)) / f(float64(perSocket))
}

// Bandwidth prices a working set of footprintGB under the configuration.
func (c Config) Bandwidth(footprintGB float64) (Bandwidth, error) {
	if err := c.Validate(); err != nil {
		return Bandwidth{}, err
	}
	if footprintGB <= 0 {
		return Bandwidth{}, fmt.Errorf("memsim: non-positive footprint %g GB", footprintGB)
	}
	sockets := c.SocketsUsed()
	perSocketFootprint := footprintGB / float64(sockets)
	hbmCap := c.CPU.HBM.CapacityGB
	ddrBW := c.CPU.DDR.BandwidthGBs
	hbmBW := c.CPU.HBM.BandwidthGBs

	// Tier composition within one socket: time to stream 1 GB of the
	// working set, as a capacity-weighted harmonic mean of tier speeds.
	var hbmFrac, timePerGB float64
	switch c.Mem {
	case DDROnly:
		timePerGB = 1 / ddrBW
	case HBMOnly:
		if perSocketFootprint > hbmCap {
			return Bandwidth{}, fmt.Errorf(
				"memsim: %.1f GB/socket exceeds HBM-only capacity %.0f GB",
				perSocketFootprint, hbmCap)
		}
		hbmFrac = 1
		timePerGB = 1 / hbmBW
	case Flat:
		hbmFrac = minF(1, hbmCap/perSocketFootprint)
		// DDR spill; beyond the socket's DDR, spill to the remote socket
		// over UPI (handled below via remote fraction when sockets == 1).
		timePerGB = hbmFrac/hbmBW + (1-hbmFrac)/ddrBW
	case Cache:
		hbmFrac = minF(1, hbmCap/perSocketFootprint) * cacheModeHitBWFrac
		timePerGB = hbmFrac/(hbmBW*cacheModeHitBWFrac) +
			(1-hbmFrac)/(ddrBW*cacheModeMissBWFrac)
	}
	socketBW := 1 / timePerGB

	// Sub-NUMA clustering: NUMA-unaware allocation sends most accesses to
	// remote sub-clusters at reduced bandwidth.
	var remoteFrac float64
	if c.Cluster == SNC4 {
		remoteFrac = sncRemoteFraction
		socketBW = 1 / ((1-remoteFrac)/socketBW + remoteFrac/(socketBW*sncRemoteBWFrac))
	}

	// Active-core scaling: a few cores cannot saturate the socket.
	coresOnSocket := c.Cores
	if coresOnSocket > c.CPU.CoresPerSocket {
		coresOnSocket = c.CPU.CoresPerSocket
	}
	socketBW *= coreBWScale(coresOnSocket, c.CPU.CoresPerSocket)

	// Cross-socket: with interleaved data, half the accesses of each
	// socket are remote and bottleneck on UPI.
	var upiFrac float64
	total := socketBW * float64(sockets)
	if sockets > 1 {
		upiFrac = crossSocketRemoteFraction
		perSocket := 1 / ((1-upiFrac)/socketBW + upiFrac/c.CPU.UPIGBs)
		total = perSocket * float64(sockets)
		remoteFrac = maxF(remoteFrac, upiFrac)
	} else if c.Mem != HBMOnly && footprintGB > c.CPU.TotalMemoryGB() {
		// Capacity spill to the other socket's DDR over UPI (§VI).
		spill := (footprintGB - c.CPU.TotalMemoryGB()) / footprintGB
		total = 1 / ((1-spill)/total + spill/c.CPU.UPIGBs)
		upiFrac = spill
		remoteFrac = maxF(remoteFrac, spill)
	}

	return Bandwidth{
		EffectiveGBs:   total * c.CPU.MemEff,
		HBMFraction:    hbmFrac,
		RemoteFraction: remoteFrac,
		UPIFraction:    upiFrac,
	}, nil
}

// ComputeScale returns the multiplier on a per-socket compute path's peak
// throughput for the active core count: linear in cores, discounted by
// Amdahl synchronization (much heavier across sockets).
func (c Config) ComputeScale() float64 {
	sockets := c.SocketsUsed()
	sf := serialFraction
	if sockets > 1 {
		sf = crossSocketSerialFraction
	}
	eff := func(n float64) float64 { return 1 / (1 + sf*(n-1)) }
	full := float64(c.CPU.CoresPerSocket)
	n := float64(c.Cores)
	return (n * eff(n)) / (full * eff(full))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
