package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func sprConfig(cores int, mem MemMode, cl ClusterMode) Config {
	return Config{CPU: hw.SPRMax9468, Cores: cores, Mem: mem, Cluster: cl}
}

func mustBW(t *testing.T, c Config, fp float64) Bandwidth {
	t.Helper()
	bw, err := c.Bandwidth(fp)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	return bw
}

func TestConfigNames(t *testing.T) {
	if sprConfig(48, Flat, Quad).Name() != "quad_flat" {
		t.Error("quad_flat name wrong")
	}
	if sprConfig(48, Cache, SNC4).Name() != "snc_cache" {
		t.Error("snc_cache name wrong")
	}
}

func TestValidate(t *testing.T) {
	if err := sprConfig(48, Flat, Quad).Validate(); err != nil {
		t.Error(err)
	}
	if sprConfig(0, Flat, Quad).Validate() == nil {
		t.Error("zero cores must fail")
	}
	if sprConfig(97, Flat, Quad).Validate() == nil {
		t.Error("too many cores must fail")
	}
	icl := Config{CPU: hw.ICL8352Y, Cores: 32, Mem: Flat, Cluster: Quad}
	if icl.Validate() == nil {
		t.Error("flat mode on HBM-less ICL must fail")
	}
	if (Config{CPU: hw.ICL8352Y, Cores: 32, Mem: DDROnly, Cluster: Quad}).Validate() != nil {
		t.Error("ddr mode on ICL must validate")
	}
}

// TestQuadFlatBest reproduces Key Finding #2: among the four SPR
// configurations, quad_flat has the highest effective bandwidth for a
// typical working set.
func TestQuadFlatBest(t *testing.T) {
	const fp = 26 // GB, LLaMA2-13B weights
	best := "quad_flat"
	var bestBW float64
	got := ""
	for _, mem := range []MemMode{Flat, Cache} {
		for _, cl := range []ClusterMode{Quad, SNC4} {
			c := sprConfig(48, mem, cl)
			bw := mustBW(t, c, fp)
			if bw.EffectiveGBs > bestBW {
				bestBW, got = bw.EffectiveGBs, c.Name()
			}
		}
	}
	if got != best {
		t.Errorf("best config = %s, paper says %s", got, best)
	}
}

func TestFlatBeatsCacheSlightly(t *testing.T) {
	flat := mustBW(t, sprConfig(48, Flat, Quad), 26).EffectiveGBs
	cache := mustBW(t, sprConfig(48, Cache, Quad), 26).EffectiveGBs
	if flat <= cache {
		t.Errorf("flat (%.0f) must beat cache (%.0f)", flat, cache)
	}
	if flat > cache*1.25 {
		t.Errorf("flat advantage implausibly large: %.0f vs %.0f", flat, cache)
	}
}

func TestSNCPenalty(t *testing.T) {
	quad := mustBW(t, sprConfig(48, Flat, Quad), 26)
	snc := mustBW(t, sprConfig(48, Flat, SNC4), 26)
	if snc.EffectiveGBs >= quad.EffectiveGBs {
		t.Error("unmanaged SNC must lose to quad")
	}
	if snc.RemoteFraction <= quad.RemoteFraction {
		t.Error("SNC must raise the remote-access fraction (Fig 15)")
	}
}

// TestHBMSplit: working sets beyond 64 GB HBM spill to DDR in flat mode,
// dropping effective bandwidth (the OPT-66B case).
func TestHBMSplit(t *testing.T) {
	small := mustBW(t, sprConfig(48, Flat, Quad), 26)
	if small.HBMFraction != 1 {
		t.Errorf("26 GB should be fully HBM-resident, got %.2f", small.HBMFraction)
	}
	big := mustBW(t, sprConfig(48, Flat, Quad), 132)
	if big.HBMFraction >= 0.6 || big.HBMFraction <= 0.3 {
		t.Errorf("132 GB HBM fraction = %.2f, want 64/132≈0.48", big.HBMFraction)
	}
	if big.EffectiveGBs >= small.EffectiveGBs {
		t.Error("DDR spill must reduce effective bandwidth")
	}
}

// TestHBMOnlyCapacity: HBM-only mode must reject working sets over 64 GB.
func TestHBMOnlyCapacity(t *testing.T) {
	if _, err := sprConfig(48, HBMOnly, Quad).Bandwidth(70); err == nil {
		t.Error("HBM-only must reject 70 GB on one socket")
	}
	bw := mustBW(t, sprConfig(48, HBMOnly, Quad), 30)
	if bw.HBMFraction != 1 {
		t.Error("HBM-only must serve everything from HBM")
	}
}

// TestCoreScaling: decode bandwidth grows with cores and saturates;
// calibrated so 48 cores ≈ 2.2× the bandwidth of 12 (Fig 14's decode).
func TestCoreScaling(t *testing.T) {
	bw12 := mustBW(t, sprConfig(12, Flat, Quad), 26).EffectiveGBs
	bw24 := mustBW(t, sprConfig(24, Flat, Quad), 26).EffectiveGBs
	bw48 := mustBW(t, sprConfig(48, Flat, Quad), 26).EffectiveGBs
	if !(bw12 < bw24 && bw24 < bw48) {
		t.Errorf("bandwidth not monotone in cores: %v %v %v", bw12, bw24, bw48)
	}
	if r := bw48 / bw12; r < 1.9 || r > 2.5 {
		t.Errorf("48/12-core bandwidth ratio = %.2f, calibrated target ≈2.2", r)
	}
}

// Test96CoreRegression: spanning both sockets routes half the traffic over
// UPI and regresses effective bandwidth below the single-socket peak
// (Fig 16, Key Finding #3).
func Test96CoreRegression(t *testing.T) {
	bw48 := mustBW(t, sprConfig(48, Flat, Quad), 26)
	bw96 := mustBW(t, sprConfig(96, Flat, Quad), 26)
	if bw96.EffectiveGBs >= bw48.EffectiveGBs {
		t.Errorf("96 cores (%.0f GB/s) must regress vs 48 (%.0f GB/s)",
			bw96.EffectiveGBs, bw48.EffectiveGBs)
	}
	if bw96.UPIFraction == 0 {
		t.Error("96-core run must report UPI traffic")
	}
}

// TestCapacitySpill: a footprint beyond one socket's 320 GB spills over
// UPI even on a single socket (§VI NUMA discussion).
func TestCapacitySpill(t *testing.T) {
	bw := mustBW(t, sprConfig(48, Flat, Quad), 400)
	if bw.UPIFraction <= 0 {
		t.Error("oversized footprint must spill over UPI")
	}
	small := mustBW(t, sprConfig(48, Flat, Quad), 100)
	if bw.EffectiveGBs >= small.EffectiveGBs {
		t.Error("spill must reduce bandwidth")
	}
}

func TestComputeScale(t *testing.T) {
	full := sprConfig(48, Flat, Quad).ComputeScale()
	if full != 1 {
		t.Errorf("full-socket compute scale = %v, want 1", full)
	}
	half := sprConfig(24, Flat, Quad).ComputeScale()
	if half < 0.4 || half > 0.65 {
		t.Errorf("24-core compute scale = %v", half)
	}
	// 12→48 cores must give the paper's ~2.93× prefill speedup.
	if r := full / sprConfig(12, Flat, Quad).ComputeScale(); r < 2.7 || r > 3.2 {
		t.Errorf("48/12-core compute ratio = %.2f, want ≈2.93", r)
	}
	// Two sockets: more raw compute but heavy sync discount.
	two := sprConfig(96, Flat, Quad).ComputeScale()
	if two <= full {
		t.Error("96 cores should still raise raw compute scale")
	}
	if two >= 1.9 {
		t.Errorf("96-core compute scale %.2f should be well below 2× (UPI sync)", two)
	}
}

func TestBandwidthPositiveProperty(t *testing.T) {
	f := func(fpRaw uint16, coresRaw uint8) bool {
		fp := float64(fpRaw%500) + 0.5
		cores := int(coresRaw%96) + 1
		bw, err := sprConfig(cores, Flat, Quad).Bandwidth(fp)
		if err != nil {
			return false
		}
		return bw.EffectiveGBs > 0 &&
			bw.HBMFraction >= 0 && bw.HBMFraction <= 1 &&
			bw.RemoteFraction >= 0 && bw.RemoteFraction <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthErrors(t *testing.T) {
	if _, err := sprConfig(48, Flat, Quad).Bandwidth(0); err == nil {
		t.Error("zero footprint must error")
	}
	if _, err := sprConfig(0, Flat, Quad).Bandwidth(10); err == nil {
		t.Error("invalid config must error")
	}
}

func TestModeStrings(t *testing.T) {
	if Flat.String() != "flat" || Cache.String() != "cache" ||
		HBMOnly.String() != "hbm-only" || DDROnly.String() != "ddr" {
		t.Error("mem mode names wrong")
	}
	if Quad.String() != "quad" || SNC4.String() != "snc" {
		t.Error("cluster mode names wrong")
	}
}
