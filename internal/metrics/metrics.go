// Package metrics defines the LLM-inference performance metrics the paper
// evaluates (§II-C): time to first token (TTFT), time per output token
// (TPOT), end-to-end latency, and tokens-per-second throughput for the
// prefill phase, the decode phase, and the whole request.
package metrics

import (
	"fmt"

	"repro/internal/counters"
)

// Latency aggregates the three latency metrics, in seconds.
type Latency struct {
	TTFT float64 // prefill time: first token
	TPOT float64 // mean seconds per subsequent output token
	E2E  float64 // total request time
}

// Throughput aggregates tokens-per-second rates. Prefill counts prompt
// tokens processed per second; Decode and E2E count generated tokens.
type Throughput struct {
	Prefill float64
	Decode  float64
	E2E     float64
}

// Result is the outcome of simulating one (platform, model, batch,
// sequence) point.
type Result struct {
	Platform  string
	Model     string
	Batch     int
	InputLen  int
	OutputLen int

	Latency    Latency
	Throughput Throughput

	// PrefillSeconds and DecodeSeconds partition E2E by phase.
	PrefillSeconds float64
	DecodeSeconds  float64

	// ComputeSeconds and TransferSeconds break execution down for the
	// offloading analysis (Fig 18): TransferSeconds is time stalled on
	// PCIe data loading, ComputeSeconds everything else.
	ComputeSeconds  float64
	TransferSeconds float64

	// Counters carries the emulated performance counters (CPU runs).
	Counters counters.Report
}

// New derives the full metric set from phase times. prefill and decode are
// the phase wall-clock times in seconds; decode covers outputLen-1 steps
// (the first output token is produced by prefill).
func New(platform, model string, batch, inputLen, outputLen int, prefill, decode float64) Result {
	r := Result{
		Platform: platform, Model: model,
		Batch: batch, InputLen: inputLen, OutputLen: outputLen,
		PrefillSeconds: prefill, DecodeSeconds: decode,
	}
	r.Latency.TTFT = prefill
	r.Latency.E2E = prefill + decode
	steps := outputLen - 1
	if steps > 0 {
		r.Latency.TPOT = decode / float64(steps)
		r.Throughput.Decode = float64(batch*steps) / decode
	}
	if prefill > 0 {
		r.Throughput.Prefill = float64(batch*inputLen) / prefill
	}
	if r.Latency.E2E > 0 {
		r.Throughput.E2E = float64(batch*outputLen) / r.Latency.E2E
	}
	return r
}

// PCIeFraction returns the share of execution spent on PCIe data loading
// (Fig 18's breakdown); zero for non-offloaded runs.
func (r Result) PCIeFraction() float64 {
	total := r.ComputeSeconds + r.TransferSeconds
	if total == 0 {
		return 0
	}
	return r.TransferSeconds / total
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s b=%d in=%d out=%d: TTFT=%.1fms TPOT=%.1fms E2E=%.2fs thpt=%.1f tok/s",
		r.Platform, r.Model, r.Batch, r.InputLen, r.OutputLen,
		r.Latency.TTFT*1e3, r.Latency.TPOT*1e3, r.Latency.E2E, r.Throughput.E2E)
}
