package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestNewDerivations(t *testing.T) {
	r := New("SPR", "OPT-13B", 4, 128, 32, 0.5, 3.1)
	if r.Latency.TTFT != 0.5 {
		t.Errorf("TTFT = %v", r.Latency.TTFT)
	}
	if math.Abs(r.Latency.E2E-3.6) > 1e-12 {
		t.Errorf("E2E = %v", r.Latency.E2E)
	}
	if math.Abs(r.Latency.TPOT-0.1) > 1e-12 {
		t.Errorf("TPOT = %v", r.Latency.TPOT)
	}
	if math.Abs(r.Throughput.Prefill-4*128/0.5) > 1e-9 {
		t.Errorf("prefill thpt = %v", r.Throughput.Prefill)
	}
	if math.Abs(r.Throughput.Decode-4*31/3.1) > 1e-9 {
		t.Errorf("decode thpt = %v", r.Throughput.Decode)
	}
	if math.Abs(r.Throughput.E2E-4*32/3.6) > 1e-9 {
		t.Errorf("e2e thpt = %v", r.Throughput.E2E)
	}
}

func TestNewSingleToken(t *testing.T) {
	// outputLen=1 means no decode phase; TPOT undefined (0), no division
	// by zero.
	r := New("SPR", "m", 1, 128, 1, 0.2, 0)
	if r.Latency.TPOT != 0 || r.Throughput.Decode != 0 {
		t.Errorf("single-token TPOT/decode thpt should be 0: %+v", r.Latency)
	}
	if r.Throughput.E2E != 5 {
		t.Errorf("E2E thpt = %v, want 5", r.Throughput.E2E)
	}
}

func TestPCIeFraction(t *testing.T) {
	r := Result{ComputeSeconds: 1, TransferSeconds: 3}
	if r.PCIeFraction() != 0.75 {
		t.Errorf("PCIe fraction = %v", r.PCIeFraction())
	}
	if (Result{}).PCIeFraction() != 0 {
		t.Error("empty result must have zero PCIe fraction")
	}
}

func TestString(t *testing.T) {
	s := New("SPR", "OPT-13B", 1, 128, 32, 0.1, 1.0).String()
	for _, want := range []string{"SPR", "OPT-13B", "TTFT", "TPOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
