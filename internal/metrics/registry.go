package metrics

// registry.go extends the package beyond the paper's per-point metric
// structs with the serving-side observability layer: concurrency-safe
// counters, gauges and histograms collected in a Registry and exported in
// the Prometheus text exposition format. The gateway uses these to report
// queue depth, admission rejects, TTFT/TPOT/E2E percentiles and batch-size
// distributions under live load.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative) to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (possibly negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, the
// Prometheus histogram shape. Quantiles are estimated by linear
// interpolation within the owning bucket, so they are approximate but
// cheap and mergeable.
type Histogram struct {
	name, help string
	mu         sync.Mutex
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	counts     []uint64  // len(bounds)+1, last is the +Inf bucket
	sum        float64
	count      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i]++
	h.sum += x
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by interpolating within
// the bucket that holds the target rank. Samples beyond the last finite
// bound report that bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket: clamp to last finite bound
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets is a log-spaced bucket layout covering 100 µs to ~100 s,
// suitable for TTFT/TPOT/E2E observations in seconds.
func LatencyBuckets() []float64 {
	return ExponentialBuckets(1e-4, 2, 21)
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, stepping by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Registry holds a named set of instruments and renders them for
// scraping. Instrument lookups are idempotent: asking for an existing
// name returns the existing instrument.
type Registry struct {
	mu    sync.Mutex
	order []string
	byN   map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: map[string]any{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byN[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as %T, not Counter", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byN[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as %T, not Gauge", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (ascending) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byN[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as %T, not Histogram", name, m))
		}
		return h
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{name: name, help: help,
		bounds: bs, counts: make([]uint64, len(bs)+1)}
	r.register(name, h)
	return h
}

func (r *Registry) register(name string, m any) {
	r.byN[name] = m
	r.order = append(r.order, name)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byN := make(map[string]any, len(r.byN))
	for k, v := range r.byN {
		byN[k] = v
	}
	r.mu.Unlock()

	for _, name := range names {
		switch m := byN[name].(type) {
		case *Counter:
			if err := writeHeader(w, name, m.help, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if err := writeHeader(w, name, m.help, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHeader(w, name, m.help, "histogram"); err != nil {
				return err
			}
			m.mu.Lock()
			var cum uint64
			for i, b := range m.bounds {
				cum += m.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					name, formatBound(b), cum); err != nil {
					m.mu.Unlock()
					return err
				}
			}
			cum += m.counts[len(m.bounds)]
			_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				name, cum, name, m.sum, name, m.count)
			m.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}
