package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("queue_depth", "queued requests")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Idempotent lookup returns the same instrument.
	if r.Counter("reqs_total", "") != c {
		t.Error("counter lookup not idempotent")
	}
	if r.Gauge("queue_depth", "") != g {
		t.Error("gauge lookup not idempotent")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", LinearBuckets(0.1, 0.1, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 1.00 uniform
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 0.1 {
		t.Errorf("p50 = %g, want ~0.5", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-0.95) > 0.1 {
		t.Errorf("p95 = %g, want ~0.95", got)
	}
	if got := h.Mean(); math.Abs(got-0.505) > 1e-9 {
		t.Errorf("mean = %g, want 0.505", got)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to 2", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a help").Add(3)
	r.Gauge("b", "").Set(-2)
	h := r.Histogram("c_seconds", "c help", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total a help",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b gauge",
		"b -2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 9.9",
		"c_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", LatencyBuckets()).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if r.Counter("n_total", "").Value() != 8000 {
		t.Errorf("counter = %d, want 8000", r.Counter("n_total", "").Value())
	}
	if r.Histogram("h", "", nil).Count() != 8000 {
		t.Errorf("histogram count = %d", r.Histogram("h", "", nil).Count())
	}
}

func TestBucketHelpers(t *testing.T) {
	e := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("exp buckets %v", e)
		}
	}
	l := LinearBuckets(0, 0.5, 3)
	if l[2] != 1 {
		t.Fatalf("lin buckets %v", l)
	}
	if n := len(LatencyBuckets()); n != 21 {
		t.Fatalf("latency buckets %d", n)
	}
}
