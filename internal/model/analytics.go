package model

import "repro/internal/tensor"

// KVDim returns the key/value projection width KVHeads·HeadDim. For models
// without grouped-query attention this equals DModel.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim() }

// AttnParams returns the attention parameter count of one decoder block:
// Wq and Wo are DModel×DModel, Wk and Wv are DModel×KVDim.
func (c Config) AttnParams() int64 {
	d := int64(c.DModel)
	kv := int64(c.KVDim())
	return 2*d*d + 2*d*kv
}

// FFNParams returns the feed-forward parameter count of one decoder block.
// OPT uses two projections (up, down); LLaMA-2 adds a gate projection.
func (c Config) FFNParams() int64 {
	d, dff := int64(c.DModel), int64(c.DFF)
	if c.Family == LLaMA2 {
		return 3 * d * dff
	}
	return 2 * d * dff
}

// LayerParams returns the parameter count of one decoder block including
// normalization gains/biases (and linear biases for OPT).
func (c Config) LayerParams() int64 {
	p := c.AttnParams() + c.FFNParams()
	d := int64(c.DModel)
	if c.Family == OPT {
		// Linear biases (qkv, o, ffn) and two LayerNorms (gain+bias).
		p += 3*d + int64(c.KVDim()) + int64(c.DFF) + 4*d
	} else {
		// Two RMSNorm gains.
		p += 2 * d
	}
	return p
}

// EmbeddingParams returns the token-embedding (and, for OPT, learned
// positional-embedding) parameter count. LLaMA-2 has an untied output
// head, which is counted here as well.
func (c Config) EmbeddingParams() int64 {
	d := int64(c.DModel)
	e := int64(c.Vocab) * d
	if c.Family == OPT {
		return e + int64(c.MaxSeq)*d // tied output head
	}
	return 2 * e // untied lm_head
}

// ParamCount returns the total parameter count of the model.
func (c Config) ParamCount() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams() + int64(c.DModel)
}

// WeightBytes returns the bytes needed to store all parameters in dt,
// the quantity plotted in Fig 6 (with dt = FP16).
func (c Config) WeightBytes(dt tensor.DType) int64 {
	return c.ParamCount() * int64(dt.Size())
}

// KVBytesPerTokenPerLayer returns the KV-cache bytes one token adds to one
// layer: 2 (K and V) × KVDim elements.
func (c Config) KVBytesPerTokenPerLayer(dt tensor.DType) int64 {
	return 2 * int64(c.KVDim()) * int64(dt.Size())
}

// KVCacheBytes returns the total KV-cache footprint for a given sequence
// length and batch size, the §II-B formula
//
//	size(dt) · 2 · n_layers · d_kv · n_seq · n_batch
//
// plotted in Fig 7.
func (c Config) KVCacheBytes(seqLen, batch int, dt tensor.DType) int64 {
	return int64(c.Layers) * c.KVBytesPerTokenPerLayer(dt) * int64(seqLen) * int64(batch)
}

// PrefillFLOPs returns the total floating-point operations of the prefill
// phase over inputLen tokens per sequence at the given batch size:
// 2·params per token for the linear layers plus causal attention.
func (c Config) PrefillFLOPs(inputLen, batch int) float64 {
	tokens := float64(inputLen) * float64(batch)
	linear := 2 * float64(c.LayerParams()) * float64(c.Layers) * tokens
	// Causal attention: Σ_t 4·d·t ≈ 2·d·S² per sequence per layer.
	attn := 2 * float64(c.DModel) * float64(inputLen) * float64(inputLen) *
		float64(batch) * float64(c.Layers)
	head := 2 * float64(c.Vocab) * float64(c.DModel) * float64(batch)
	return linear + attn + head
}

// DecodeStepFLOPs returns the floating-point operations of one decode step
// when the KV cache already holds ctxLen tokens per sequence.
func (c Config) DecodeStepFLOPs(ctxLen, batch int) float64 {
	linear := 2 * float64(c.LayerParams()) * float64(c.Layers) * float64(batch)
	attn := 4 * float64(c.DModel) * float64(ctxLen) * float64(batch) * float64(c.Layers)
	head := 2 * float64(c.Vocab) * float64(c.DModel) * float64(batch)
	return linear + attn + head
}

// DecodeStepBytes returns the bytes streamed from memory during one decode
// step with weights stored in dt: all weights once (shared across the
// batch) plus the per-sequence KV cache read.
func (c Config) DecodeStepBytes(ctxLen, batch int, dt tensor.DType) int64 {
	return c.WeightBytes(dt) + c.KVCacheBytes(ctxLen, batch, dt)
}
