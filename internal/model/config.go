// Package model describes decoder-only transformer architectures (the OPT
// and LLaMA-2 families evaluated in the paper) and derives the analytic
// quantities the characterization depends on: parameter counts, weight and
// KV-cache footprints (§II-B), and FLOP/byte costs per phase that feed the
// platform performance model.
package model

import (
	"errors"
	"fmt"
)

// ErrUnknownModel marks lookups of model names with no preset, so API
// layers can distinguish "no such resource" (404) from malformed input
// (400) with errors.Is.
var ErrUnknownModel = errors.New("model: unknown preset")

// Family identifies a model family, which fixes architectural choices such
// as normalization, activation, and positional encoding.
type Family int

const (
	// OPT models use LayerNorm, ReLU FFNs with bias, learned positional
	// embeddings, and a 4×d feed-forward width.
	OPT Family = iota
	// LLaMA2 models use RMSNorm, SiLU-gated FFNs without bias, rotary
	// positional embeddings, and (for 70B) grouped-query attention.
	LLaMA2
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case OPT:
		return "OPT"
	case LLaMA2:
		return "LLaMA-2"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// Config describes one decoder-only transformer architecture.
type Config struct {
	Name    string // e.g. "OPT-13B"
	Family  Family
	Layers  int // number of decoder blocks
	DModel  int // hidden dimension
	Heads   int // query heads
	KVHeads int // key/value heads (== Heads unless grouped-query attention)
	DFF     int // feed-forward inner dimension
	Vocab   int // vocabulary size
	MaxSeq  int // maximum (trained) sequence length
}

// HeadDim returns the per-head dimension DModel/Heads.
func (c Config) HeadDim() int { return c.DModel / c.Heads }

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.DModel <= 0 || c.Heads <= 0 || c.KVHeads <= 0 || c.DFF <= 0 || c.Vocab <= 0:
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	case c.DModel%c.Heads != 0:
		return fmt.Errorf("model %q: DModel %d not divisible by Heads %d", c.Name, c.DModel, c.Heads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %q: Heads %d not divisible by KVHeads %d", c.Name, c.Heads, c.KVHeads)
	}
	return nil
}

// Architecture presets for the models evaluated in the paper (§IV-A).
// Dimensions follow the published OPT and LLaMA-2 configurations.
var (
	// Small OPT members (draft models for speculative decoding and quick
	// sweeps; not part of the paper's evaluated set).
	OPT125M = Config{Name: "OPT-125M", Family: OPT, Layers: 12, DModel: 768, Heads: 12, KVHeads: 12, DFF: 3072, Vocab: 50272, MaxSeq: 2048}
	OPT350M = Config{Name: "OPT-350M", Family: OPT, Layers: 24, DModel: 1024, Heads: 16, KVHeads: 16, DFF: 4096, Vocab: 50272, MaxSeq: 2048}
	OPT2B7  = Config{Name: "OPT-2.7B", Family: OPT, Layers: 32, DModel: 2560, Heads: 32, KVHeads: 32, DFF: 10240, Vocab: 50272, MaxSeq: 2048}

	OPT1B3  = Config{Name: "OPT-1.3B", Family: OPT, Layers: 24, DModel: 2048, Heads: 32, KVHeads: 32, DFF: 8192, Vocab: 50272, MaxSeq: 2048}
	OPT6B7  = Config{Name: "OPT-6.7B", Family: OPT, Layers: 32, DModel: 4096, Heads: 32, KVHeads: 32, DFF: 16384, Vocab: 50272, MaxSeq: 2048}
	OPT13B  = Config{Name: "OPT-13B", Family: OPT, Layers: 40, DModel: 5120, Heads: 40, KVHeads: 40, DFF: 20480, Vocab: 50272, MaxSeq: 2048}
	OPT30B  = Config{Name: "OPT-30B", Family: OPT, Layers: 48, DModel: 7168, Heads: 56, KVHeads: 56, DFF: 28672, Vocab: 50272, MaxSeq: 2048}
	OPT66B  = Config{Name: "OPT-66B", Family: OPT, Layers: 64, DModel: 9216, Heads: 72, KVHeads: 72, DFF: 36864, Vocab: 50272, MaxSeq: 2048}
	OPT175B = Config{Name: "OPT-175B", Family: OPT, Layers: 96, DModel: 12288, Heads: 96, KVHeads: 96, DFF: 49152, Vocab: 50272, MaxSeq: 2048}

	Llama7B  = Config{Name: "LLaMA2-7B", Family: LLaMA2, Layers: 32, DModel: 4096, Heads: 32, KVHeads: 32, DFF: 11008, Vocab: 32000, MaxSeq: 4096}
	Llama13B = Config{Name: "LLaMA2-13B", Family: LLaMA2, Layers: 40, DModel: 5120, Heads: 40, KVHeads: 40, DFF: 13824, Vocab: 32000, MaxSeq: 4096}
	Llama70B = Config{Name: "LLaMA2-70B", Family: LLaMA2, Layers: 80, DModel: 8192, Heads: 64, KVHeads: 8, DFF: 28672, Vocab: 32000, MaxSeq: 4096}
)

// Evaluated returns the eight models characterized in §IV/§V in the order
// the paper's figures present them (ascending size within mixed families).
func Evaluated() []Config {
	return []Config{OPT1B3, OPT6B7, Llama7B, OPT13B, Llama13B, OPT30B, OPT66B, Llama70B}
}

// ByName returns the preset with the given name.
func ByName(name string) (Config, error) {
	extras := []Config{OPT125M, OPT350M, OPT2B7, OPT175B}
	for _, c := range append(Evaluated(), extras...) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("%w %q", ErrUnknownModel, name)
}

// Tiny returns a miniature configuration of the given family for the
// functional engine's tests and examples. It preserves the family's
// architectural choices at toy scale.
func Tiny(f Family) Config {
	c := Config{Name: "tiny-" + f.String(), Family: f, Layers: 2, DModel: 64,
		Heads: 4, KVHeads: 4, Vocab: 97, MaxSeq: 64}
	if f == OPT {
		c.DFF = 4 * c.DModel
	} else {
		c.DFF = 8 * c.DModel / 3
		c.KVHeads = 2 // exercise grouped-query attention
	}
	return c
}
