package model

import (
	"testing"

	"repro/internal/tensor"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range append(Evaluated(), OPT175B) {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	for _, f := range []Family{OPT, LLaMA2} {
		if err := Tiny(f).Validate(); err != nil {
			t.Errorf("tiny %s: %v", f, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "indivisible", Layers: 1, DModel: 100, Heads: 3, KVHeads: 3, DFF: 1, Vocab: 1},
		{Name: "gqa", Layers: 1, DModel: 64, Heads: 4, KVHeads: 3, DFF: 1, Vocab: 1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

// TestParamCounts checks that derived parameter counts land within 3% of
// the nominal model sizes the paper quotes.
func TestSmallPresets(t *testing.T) {
	want := map[string]float64{"OPT-125M": 0.125e9, "OPT-350M": 0.331e9, "OPT-2.7B": 2.7e9}
	for name, nominal := range want {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		got := float64(c.ParamCount())
		if rel := (got - nominal) / nominal; rel > 0.12 || rel < -0.12 {
			t.Errorf("%s: %.3gB params, nominal %.3gB", name, got/1e9, nominal/1e9)
		}
	}
}

func TestParamCounts(t *testing.T) {
	want := map[string]float64{
		"OPT-1.3B":   1.3e9,
		"OPT-6.7B":   6.7e9,
		"OPT-13B":    13e9,
		"OPT-30B":    30e9,
		"OPT-66B":    66e9,
		"OPT-175B":   175e9,
		"LLaMA2-7B":  6.74e9,
		"LLaMA2-13B": 13.0e9,
		"LLaMA2-70B": 69e9,
	}
	for _, c := range append(Evaluated(), OPT175B) {
		got := float64(c.ParamCount())
		nominal := want[c.Name]
		if rel := (got - nominal) / nominal; rel > 0.03 || rel < -0.05 {
			t.Errorf("%s: %.3gB params, nominal %.3gB (rel %.1f%%)",
				c.Name, got/1e9, nominal/1e9, rel*100)
		}
	}
}

// TestKVCachePaperExample reproduces the §I sizing example: OPT-66B at
// sequence length 4096 and batch 32 needs 288 GB (GiB) of KV cache.
func TestKVCachePaperExample(t *testing.T) {
	got := OPT66B.KVCacheBytes(4096, 32, tensor.BF16)
	gib := float64(got) / (1 << 30)
	if gib < 280 || gib > 296 {
		t.Errorf("OPT-66B KV cache = %.1f GiB, paper says 288 GB", gib)
	}
}

// TestWeightFootprints checks the §I/§III sizing claims: OPT-175B needs
// ~350 GB in FP16; LLaMA2-70B exceeds a single 80 GB H100.
func TestWeightFootprints(t *testing.T) {
	opt175 := float64(OPT175B.WeightBytes(tensor.FP16)) / 1e9
	if opt175 < 330 || opt175 > 370 {
		t.Errorf("OPT-175B FP16 = %.0f GB, paper says ~350 GB", opt175)
	}
	llama70 := float64(Llama70B.WeightBytes(tensor.FP16)) / 1e9
	if llama70 < 120 || llama70 > 145 {
		t.Errorf("LLaMA2-70B FP16 = %.0f GB, expected ~138 GB", llama70)
	}
	if llama70 <= 80 {
		t.Error("LLaMA2-70B must exceed one H100's 80 GB")
	}
}

func TestKVCacheLinear(t *testing.T) {
	// The KV cache must scale linearly in both sequence length and batch.
	base := Llama13B.KVCacheBytes(128, 1, tensor.BF16)
	if Llama13B.KVCacheBytes(256, 1, tensor.BF16) != 2*base {
		t.Error("KV cache not linear in sequence length")
	}
	if Llama13B.KVCacheBytes(128, 8, tensor.BF16) != 8*base {
		t.Error("KV cache not linear in batch size")
	}
}

func TestGQAShrinksKVCache(t *testing.T) {
	// LLaMA2-70B uses 8 KV heads out of 64: its per-token KV bytes must be
	// 8× smaller than a same-width MHA model would need.
	full := 2 * int64(Llama70B.DModel) * 2
	got := Llama70B.KVBytesPerTokenPerLayer(tensor.BF16)
	if got*8 != full {
		t.Errorf("GQA KV bytes = %d, want %d", got, full/8)
	}
}

func TestHeadDimAndKVDim(t *testing.T) {
	if Llama70B.HeadDim() != 128 || Llama70B.KVDim() != 1024 {
		t.Errorf("LLaMA2-70B head dims wrong: %d, %d", Llama70B.HeadDim(), Llama70B.KVDim())
	}
	if OPT13B.KVDim() != OPT13B.DModel {
		t.Error("MHA model KVDim must equal DModel")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-30B")
	if err != nil || c.Layers != 48 {
		t.Errorf("ByName(OPT-30B) = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestFamilyString(t *testing.T) {
	if OPT.String() != "OPT" || LLaMA2.String() != "LLaMA-2" {
		t.Error("family names wrong")
	}
}
