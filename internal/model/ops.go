package model

import "repro/internal/tensor"

// Phase distinguishes the two LLM inference phases (§II-B).
type Phase int

const (
	// Prefill processes the whole input prompt at once (compute-bound).
	Prefill Phase = iota
	// Decode generates one token per step (memory-bound).
	Decode
)

// String returns the phase name.
func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// Op is one GEMM-shaped unit of work in a transformer pass, at the
// granularity the platform performance model prices: an M×N×K matrix
// multiply executed Instances times, reading WeightBytes of parameters
// and IOBytes of activations/KV-cache traffic per full pass.
type Op struct {
	Name      string
	M, N, K   int64
	Instances int64 // number of independent GEMMs of this shape per pass
	// WeightBytes is the total parameter bytes this op streams per pass
	// (zero for attention score/context ops, which read the KV cache).
	WeightBytes int64
	// IOBytes is the total activation and KV-cache bytes this op streams
	// per pass.
	IOBytes int64
	// Attention marks KV-cache-bound ops, which offloading systems such as
	// FlexGen delegate to the CPU (§VI).
	Attention bool
}

// FLOPs returns the floating-point operations of the op per pass.
func (o Op) FLOPs() float64 {
	return 2 * float64(o.M) * float64(o.N) * float64(o.K) * float64(o.Instances)
}

// Bytes returns all bytes streamed per pass.
func (o Op) Bytes() int64 { return o.WeightBytes + o.IOBytes }

// ArithmeticIntensity returns FLOPs per byte, the roofline x-coordinate.
func (o Op) ArithmeticIntensity() float64 {
	b := o.Bytes()
	if b == 0 {
		return 0
	}
	return o.FLOPs() / float64(b)
}

// Ops enumerates the GEMM-shaped work of one full forward pass.
//
// For Prefill, seq is the prompt length and ctx is ignored (the pass
// attends over the prompt itself). For Decode, seq must be 1 and ctx is
// the current KV-cache length per sequence. batch is the number of
// sequences. dt sizes weight and KV traffic.
//
// Per-layer ops are returned with Instances folded across layers (and
// across batch×heads for attention), so summing FLOPs/Bytes over the
// returned slice prices exactly one pass.
func (c Config) Ops(ph Phase, batch, seq, ctx int, dt tensor.DType) []Op {
	d := int64(c.DModel)
	kv := int64(c.KVDim())
	dff := int64(c.DFF)
	hd := int64(c.HeadDim())
	L := int64(c.Layers)
	B := int64(batch)
	S := int64(seq)
	es := int64(dt.Size())
	actES := int64(tensor.BF16.Size()) // activations kept in BF16

	var attLen int64 // keys attended per query
	if ph == Prefill {
		// Causal attention averages S/2 keys per query; price the mean.
		attLen = (S + 1) / 2
		if attLen == 0 {
			attLen = 1
		}
	} else {
		S = 1
		attLen = int64(ctx)
		if attLen == 0 {
			attLen = 1
		}
	}

	rows := B * S // GEMM M dimension for the linear layers
	ops := []Op{
		{
			Name: "qkv_proj", M: rows, N: d + 2*kv, K: d, Instances: L,
			WeightBytes: L * d * (d + 2*kv) * es,
			IOBytes:     L * rows * (2*d + 2*kv) * actES,
		},
		{
			Name: "attn_scores", M: S, N: attLen, K: hd,
			Instances: L * B * int64(c.Heads),
			// Reads K cache for every query group; writes scores.
			IOBytes:   L * B * (attLen*kv + S*attLen*int64(c.Heads)) * actES,
			Attention: true,
		},
		{
			Name: "attn_context", M: S, N: hd, K: attLen,
			Instances: L * B * int64(c.Heads),
			// Reads V cache and scores; writes context.
			IOBytes:   L * B * (attLen*kv + S*attLen*int64(c.Heads) + S*d) * actES,
			Attention: true,
		},
		{
			Name: "out_proj", M: rows, N: d, K: d, Instances: L,
			WeightBytes: L * d * d * es,
			IOBytes:     L * rows * 2 * d * actES,
		},
	}
	if c.Family == LLaMA2 {
		ops = append(ops,
			Op{Name: "ffn_gate_up", M: rows, N: 2 * dff, K: d, Instances: L,
				WeightBytes: L * 2 * d * dff * es,
				IOBytes:     L * rows * (d + 2*dff) * actES},
			Op{Name: "ffn_down", M: rows, N: d, K: dff, Instances: L,
				WeightBytes: L * d * dff * es,
				IOBytes:     L * rows * (dff + d) * actES},
		)
	} else {
		ops = append(ops,
			Op{Name: "ffn_up", M: rows, N: dff, K: d, Instances: L,
				WeightBytes: L * d * dff * es,
				IOBytes:     L * rows * (d + dff) * actES},
			Op{Name: "ffn_down", M: rows, N: d, K: dff, Instances: L,
				WeightBytes: L * d * dff * es,
				IOBytes:     L * rows * (dff + d) * actES},
		)
	}
	// LM head: only the last position of each sequence needs logits.
	ops = append(ops, Op{
		Name: "lm_head", M: B, N: int64(c.Vocab), K: d, Instances: 1,
		WeightBytes: int64(c.Vocab) * d * es,
		IOBytes:     B * (d + int64(c.Vocab)) * actES,
	})
	return ops
}
