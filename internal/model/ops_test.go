package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sumFLOPs(ops []Op) float64 {
	var s float64
	for _, o := range ops {
		s += o.FLOPs()
	}
	return s
}

func sumWeightBytes(ops []Op) int64 {
	var s int64
	for _, o := range ops {
		s += o.WeightBytes
	}
	return s
}

// TestOpsFLOPsMatchAnalytic cross-checks the op inventory against the
// closed-form PrefillFLOPs/DecodeStepFLOPs formulas (within the slack the
// causal-mean approximation introduces).
func TestOpsFLOPsMatchAnalytic(t *testing.T) {
	for _, c := range []Config{OPT13B, Llama13B, Llama70B} {
		for _, batch := range []int{1, 8} {
			pre := sumFLOPs(c.Ops(Prefill, batch, 128, 0, tensor.BF16))
			want := c.PrefillFLOPs(128, batch)
			if r := pre / want; r < 0.9 || r > 1.1 {
				t.Errorf("%s b=%d: prefill ops %.3g vs analytic %.3g (ratio %.2f)",
					c.Name, batch, pre, want, r)
			}
			dec := sumFLOPs(c.Ops(Decode, batch, 1, 200, tensor.BF16))
			wantD := c.DecodeStepFLOPs(200, batch)
			if r := dec / wantD; r < 0.9 || r > 1.1 {
				t.Errorf("%s b=%d: decode ops %.3g vs analytic %.3g (ratio %.2f)",
					c.Name, batch, dec, wantD, r)
			}
		}
	}
}

// TestOpsWeightBytesMatchFootprint: the weights streamed by one pass must
// equal the model's linear-layer footprint (embeddings excluded, lm_head
// included once).
func TestOpsWeightBytesMatchFootprint(t *testing.T) {
	for _, c := range Evaluated() {
		got := sumWeightBytes(c.Ops(Decode, 1, 1, 100, tensor.BF16))
		want := (c.AttnParams()+c.FFNParams())*int64(c.Layers)*2 +
			int64(c.Vocab)*int64(c.DModel)*2
		if got != want {
			t.Errorf("%s: streamed %d weight bytes, want %d", c.Name, got, want)
		}
	}
}

// TestDecodeWeightBytesBatchInvariant: weights are read once per step no
// matter the batch size — the amortization at the heart of batched decode.
func TestDecodeWeightBytesBatchInvariant(t *testing.T) {
	b1 := sumWeightBytes(OPT13B.Ops(Decode, 1, 1, 128, tensor.BF16))
	b32 := sumWeightBytes(OPT13B.Ops(Decode, 32, 1, 128, tensor.BF16))
	if b1 != b32 {
		t.Errorf("weight bytes changed with batch: %d vs %d", b1, b32)
	}
}

// TestDecodeFLOPsScaleWithBatch: decode compute must scale ~linearly in
// batch, which is what shifts large-batch decode toward compute-bound
// execution (Figs 11/12).
func TestDecodeFLOPsScaleWithBatch(t *testing.T) {
	f1 := sumFLOPs(OPT13B.Ops(Decode, 1, 1, 128, tensor.BF16))
	f32 := sumFLOPs(OPT13B.Ops(Decode, 32, 1, 128, tensor.BF16))
	if r := f32 / f1; r < 30 || r > 34 {
		t.Errorf("decode FLOPs batch scaling = %.1f, want ~32", r)
	}
}

// TestArithmeticIntensityPhases: prefill ops must have far higher
// arithmetic intensity than decode ops (prefill compute-bound, decode
// memory-bound — the paper's core framing).
func TestArithmeticIntensityPhases(t *testing.T) {
	pre := OPT13B.Ops(Prefill, 1, 128, 0, tensor.BF16)
	dec := OPT13B.Ops(Decode, 1, 1, 128, tensor.BF16)
	preAI := sumFLOPs(pre) / float64(sumBytes(pre))
	decAI := sumFLOPs(dec) / float64(sumBytes(dec))
	if preAI < 20*decAI {
		t.Errorf("prefill AI %.1f not ≫ decode AI %.2f", preAI, decAI)
	}
}

func sumBytes(ops []Op) int64 {
	var s int64
	for _, o := range ops {
		s += o.Bytes()
	}
	return s
}

// TestAttentionOpsCarryNoWeights: the attention score/context ops read the
// KV cache, not parameters; FlexGen's CPU delegation depends on this.
func TestAttentionOpsCarryNoWeights(t *testing.T) {
	for _, o := range Llama70B.Ops(Decode, 4, 1, 512, tensor.BF16) {
		if o.Attention && o.WeightBytes != 0 {
			t.Errorf("%s: attention op carries %d weight bytes", o.Name, o.WeightBytes)
		}
		if !o.Attention && o.Name != "lm_head" && o.WeightBytes == 0 {
			t.Errorf("%s: linear op carries no weights", o.Name)
		}
	}
}

// TestOpsMonotoneInContext: decode attention traffic must grow with the
// KV-cache length.
func TestOpsMonotoneInContext(t *testing.T) {
	f := func(a, b uint16) bool {
		c1, c2 := int(a%4000)+1, int(b%4000)+1
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		o1 := Llama13B.Ops(Decode, 2, 1, c1, tensor.BF16)
		o2 := Llama13B.Ops(Decode, 2, 1, c2, tensor.BF16)
		return sumBytes(o1) <= sumBytes(o2) &&
			sumFLOPs(o1) <= sumFLOPs(o2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPrefillFLOPsQuadraticAttention: doubling the prompt must roughly
// quadruple attention FLOPs while linear-layer FLOPs double.
func TestPrefillFLOPsQuadraticAttention(t *testing.T) {
	var attn128, attn256 float64
	for _, o := range OPT30B.Ops(Prefill, 1, 128, 0, tensor.BF16) {
		if o.Attention {
			attn128 += o.FLOPs()
		}
	}
	for _, o := range OPT30B.Ops(Prefill, 1, 256, 0, tensor.BF16) {
		if o.Attention {
			attn256 += o.FLOPs()
		}
	}
	if r := attn256 / attn128; math.Abs(r-4) > 0.2 {
		t.Errorf("attention FLOPs scaling = %.2f, want ~4", r)
	}
}

func TestPhaseString(t *testing.T) {
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("phase names wrong")
	}
}

func TestOpsDecodeZeroContext(t *testing.T) {
	// First decode step with empty cache must still price a nonzero op.
	for _, o := range OPT1B3.Ops(Decode, 1, 1, 0, tensor.BF16) {
		if o.FLOPs() <= 0 {
			t.Errorf("%s: non-positive FLOPs at ctx=0", o.Name)
		}
	}
}
