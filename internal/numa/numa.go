// Package numa implements the paper's first proposed optimization (§VI):
// NUMA-aware data placement. It models a two-socket SPR topology as a set
// of memory nodes (local HBM, local DDR, remote DDR over UPI) and places
// data items with known access heat — hot activations and weights in fast
// local tiers, cold data in remote memory — comparing the resulting
// effective bandwidth against NUMA-oblivious interleaving.
package numa

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Node is one allocatable memory region as seen from the compute socket.
type Node struct {
	ID           int
	Name         string
	CapacityGB   float64
	BandwidthGBs float64 // sustained bandwidth from the compute socket
	Remote       bool    // reached over UPI
}

// Topology is the set of memory nodes visible to one compute socket.
type Topology struct {
	Nodes []Node
}

// SPRTopology builds the node set of one SPR Max socket: local HBM, local
// DDR, and the sibling socket's DDR behind UPI (bandwidth-capped by the
// link).
func SPRTopology(cpu hw.CPU) Topology {
	remoteBW := cpu.DDR.BandwidthGBs
	if cpu.UPIGBs < remoteBW {
		remoteBW = cpu.UPIGBs
	}
	nodes := []Node{}
	id := 0
	if cpu.HBM.CapacityGB > 0 {
		nodes = append(nodes, Node{ID: id, Name: "local-hbm",
			CapacityGB: cpu.HBM.CapacityGB, BandwidthGBs: cpu.HBM.BandwidthGBs})
		id++
	}
	nodes = append(nodes,
		Node{ID: id, Name: "local-ddr", CapacityGB: cpu.DDR.CapacityGB,
			BandwidthGBs: cpu.DDR.BandwidthGBs},
		Node{ID: id + 1, Name: "remote-ddr", CapacityGB: cpu.DDR.CapacityGB,
			BandwidthGBs: remoteBW, Remote: true},
	)
	return Topology{Nodes: nodes}
}

// TotalCapacityGB returns the topology's aggregate capacity.
func (t Topology) TotalCapacityGB() float64 {
	var s float64
	for _, n := range t.Nodes {
		s += n.CapacityGB
	}
	return s
}

// Item is a placeable datum: a weight shard, KV-cache region, or
// activation group. Heat is its relative access frequency per byte —
// recent sparsity studies (Deja Vu, Flash-LLM) show activations and
// weights are far from uniformly hot, which is what placement exploits.
type Item struct {
	Name   string
	SizeGB float64
	Heat   float64
}

// Placement maps item index → node ID.
type Placement map[int]int

// PlaceHotCold assigns items to nodes greedily by heat density
// (Heat/SizeGB), filling the fastest nodes first: hot data lands in HBM
// and local DDR, cold data spills to remote memory.
func PlaceHotCold(items []Item, topo Topology) (Placement, error) {
	if err := checkFit(items, topo); err != nil {
		return nil, err
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return heatDensity(items[order[a]]) > heatDensity(items[order[b]])
	})
	nodes := append([]Node(nil), topo.Nodes...)
	sort.SliceStable(nodes, func(a, b int) bool {
		return nodes[a].BandwidthGBs > nodes[b].BandwidthGBs
	})
	free := make([]float64, len(nodes))
	for i, n := range nodes {
		free[i] = n.CapacityGB
	}
	p := Placement{}
	for _, idx := range order {
		placed := false
		for ni := range nodes {
			if items[idx].SizeGB <= free[ni] {
				free[ni] -= items[idx].SizeGB
				p[idx] = nodes[ni].ID
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("numa: item %q (%.1f GB) does not fit any node",
				items[idx].Name, items[idx].SizeGB)
		}
	}
	return p, nil
}

// PlaceOblivious spreads every item across nodes proportionally to
// capacity, the NUMA-unaware baseline (first-touch interleaving). Each
// item is charged the capacity-weighted harmonic bandwidth.
func PlaceOblivious(items []Item, topo Topology) (Placement, error) {
	if err := checkFit(items, topo); err != nil {
		return nil, err
	}
	// Interleaving has no single home node; represent it with node -1 and
	// let EffectiveBandwidth price it via the blended rate.
	p := Placement{}
	for i := range items {
		p[i] = -1
	}
	return p, nil
}

func heatDensity(it Item) float64 {
	if it.SizeGB == 0 {
		return 0
	}
	return it.Heat / it.SizeGB
}

func checkFit(items []Item, topo Topology) error {
	var need float64
	for _, it := range items {
		if it.SizeGB < 0 || it.Heat < 0 {
			return fmt.Errorf("numa: negative size or heat on %q", it.Name)
		}
		need += it.SizeGB
	}
	if need > topo.TotalCapacityGB() {
		return fmt.Errorf("numa: %.1f GB exceeds topology capacity %.1f GB",
			need, topo.TotalCapacityGB())
	}
	return nil
}

// blendedBandwidth is the capacity-weighted harmonic bandwidth of the
// whole topology, what interleaved traffic effectively sees.
func (t Topology) blendedBandwidth() float64 {
	var cap, time float64
	for _, n := range t.Nodes {
		cap += n.CapacityGB
		time += n.CapacityGB / n.BandwidthGBs
	}
	return cap / time
}

// EffectiveBandwidth prices a placement: total heat-weighted traffic
// divided by the time to stream each item from its node. Higher is better.
func EffectiveBandwidth(items []Item, p Placement, topo Topology) (float64, error) {
	byID := map[int]Node{}
	for _, n := range topo.Nodes {
		byID[n.ID] = n
	}
	var traffic, time float64
	for i, it := range items {
		nodeID, ok := p[i]
		if !ok {
			return 0, fmt.Errorf("numa: item %q unplaced", it.Name)
		}
		bw := topo.blendedBandwidth()
		if nodeID >= 0 {
			n, ok := byID[nodeID]
			if !ok {
				return 0, fmt.Errorf("numa: item %q placed on unknown node %d", it.Name, nodeID)
			}
			bw = n.BandwidthGBs
		}
		t := it.SizeGB * it.Heat
		traffic += t
		time += t / bw
	}
	if time == 0 {
		return 0, nil
	}
	return traffic / time, nil
}

// RemoteTrafficFraction returns the share of heat-weighted traffic served
// from remote nodes under the placement (interleaved items count their
// capacity-proportional remote share).
func RemoteTrafficFraction(items []Item, p Placement, topo Topology) float64 {
	byID := map[int]Node{}
	var remoteCap float64
	for _, n := range topo.Nodes {
		byID[n.ID] = n
		if n.Remote {
			remoteCap += n.CapacityGB
		}
	}
	interleavedRemote := remoteCap / topo.TotalCapacityGB()
	var traffic, remote float64
	for i, it := range items {
		t := it.SizeGB * it.Heat
		traffic += t
		if nodeID := p[i]; nodeID < 0 {
			remote += t * interleavedRemote
		} else if byID[nodeID].Remote {
			remote += t
		}
	}
	if traffic == 0 {
		return 0
	}
	return remote / traffic
}
