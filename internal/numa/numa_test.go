package numa

import (
	"testing"

	"repro/internal/hw"
)

// pressureItems models an OPT-66B-like working set that exceeds one
// socket's local memory: hot attention weights, warm FFN weights, cold
// rarely-touched expert shards.
func pressureItems() []Item {
	return []Item{
		{Name: "hot-attn-weights", SizeGB: 40, Heat: 10},
		{Name: "warm-ffn-weights", SizeGB: 90, Heat: 5},
		{Name: "kv-cache", SizeGB: 30, Heat: 8},
		{Name: "cold-activations", SizeGB: 120, Heat: 0.5},
		{Name: "cold-shards", SizeGB: 100, Heat: 0.2},
	}
}

func TestSPRTopology(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	if len(topo.Nodes) != 3 {
		t.Fatalf("SPR topology should have 3 nodes, got %d", len(topo.Nodes))
	}
	if topo.Nodes[0].Name != "local-hbm" || topo.Nodes[0].BandwidthGBs != 588 {
		t.Errorf("HBM node wrong: %+v", topo.Nodes[0])
	}
	remote := topo.Nodes[2]
	if !remote.Remote || remote.BandwidthGBs != hw.SPRMax9468.UPIGBs {
		t.Errorf("remote node must be UPI-capped: %+v", remote)
	}
	if topo.TotalCapacityGB() != 64+256+256 {
		t.Errorf("capacity = %v", topo.TotalCapacityGB())
	}
	// HBM-less ICL: two nodes only.
	if n := len(SPRTopology(hw.ICL8352Y).Nodes); n != 2 {
		t.Errorf("ICL topology should have 2 nodes, got %d", n)
	}
}

// TestHotColdBeatsOblivious is the §VI claim: under capacity pressure,
// heat-aware placement outperforms NUMA-oblivious interleaving.
func TestHotColdBeatsOblivious(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	items := pressureItems()
	smart, err := PlaceHotCold(items, topo)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := PlaceOblivious(items, topo)
	if err != nil {
		t.Fatal(err)
	}
	bwSmart, err := EffectiveBandwidth(items, smart, topo)
	if err != nil {
		t.Fatal(err)
	}
	bwNaive, err := EffectiveBandwidth(items, naive, topo)
	if err != nil {
		t.Fatal(err)
	}
	if bwSmart <= bwNaive {
		t.Errorf("hot/cold placement (%.0f GB/s) must beat interleaving (%.0f GB/s)",
			bwSmart, bwNaive)
	}
	if bwSmart < 1.5*bwNaive {
		t.Logf("note: placement advantage only %.2fx", bwSmart/bwNaive)
	}
}

// TestHotDataLandsInHBM: the hottest item must be placed on the HBM node.
func TestHotDataLandsInHBM(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	items := pressureItems()
	p, err := PlaceHotCold(items, topo)
	if err != nil {
		t.Fatal(err)
	}
	// The KV cache has the highest heat density (8/30 > 10/40) and must
	// claim HBM first.
	if p[2] != 0 {
		t.Errorf("kv-cache placed on node %d, want HBM (0)", p[2])
	}
	// The coldest item must land remote (everything local is full).
	if p[4] != 2 {
		t.Errorf("cold shards placed on node %d, want remote (2)", p[4])
	}
}

// TestRemoteTraffic: heat-aware placement must push less traffic over UPI
// than interleaving.
func TestRemoteTraffic(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	items := pressureItems()
	smart, _ := PlaceHotCold(items, topo)
	naive, _ := PlaceOblivious(items, topo)
	fs := RemoteTrafficFraction(items, smart, topo)
	fn := RemoteTrafficFraction(items, naive, topo)
	if fs >= fn {
		t.Errorf("smart remote fraction %.2f must be below naive %.2f", fs, fn)
	}
}

func TestPlacementFitsInSmallTopology(t *testing.T) {
	topo := Topology{Nodes: []Node{
		{ID: 0, Name: "fast", CapacityGB: 10, BandwidthGBs: 500},
		{ID: 1, Name: "slow", CapacityGB: 10, BandwidthGBs: 50, Remote: true},
	}}
	items := []Item{
		{Name: "a", SizeGB: 8, Heat: 10},
		{Name: "b", SizeGB: 8, Heat: 1},
	}
	p, err := PlaceHotCold(items, topo)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 1 {
		t.Errorf("placement wrong: %v", p)
	}
	// Oversized item: fits total but not any single node.
	bad := []Item{{Name: "huge", SizeGB: 15, Heat: 1}}
	if _, err := PlaceHotCold(bad, topo); err == nil {
		t.Error("unplaceable item must error")
	}
}

func TestCapacityErrors(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	over := []Item{{Name: "x", SizeGB: 1000, Heat: 1}}
	if _, err := PlaceHotCold(over, topo); err == nil {
		t.Error("over-capacity must error")
	}
	if _, err := PlaceOblivious(over, topo); err == nil {
		t.Error("over-capacity must error for oblivious too")
	}
	neg := []Item{{Name: "x", SizeGB: -1, Heat: 1}}
	if _, err := PlaceHotCold(neg, topo); err == nil {
		t.Error("negative size must error")
	}
}

func TestEffectiveBandwidthErrors(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	items := []Item{{Name: "a", SizeGB: 1, Heat: 1}}
	if _, err := EffectiveBandwidth(items, Placement{}, topo); err == nil {
		t.Error("unplaced item must error")
	}
	if _, err := EffectiveBandwidth(items, Placement{0: 99}, topo); err == nil {
		t.Error("unknown node must error")
	}
	if bw, err := EffectiveBandwidth(nil, Placement{}, topo); err != nil || bw != 0 {
		t.Error("empty items must price to 0")
	}
}

func TestRemoteFractionZeroTraffic(t *testing.T) {
	topo := SPRTopology(hw.SPRMax9468)
	if RemoteTrafficFraction(nil, Placement{}, topo) != 0 {
		t.Error("no items must mean zero remote fraction")
	}
}
