package offload

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one complete event ("ph":"X") in the Chrome trace-event
// JSON format that chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name        string  `json:"name"`
	Phase       string  `json:"ph"`
	TimestampUS float64 `json:"ts"`
	DurationUS  float64 `json:"dur"`
	PID         int     `json:"pid"`
	TID         int     `json:"tid"`
	Category    string  `json:"cat"`
}

// resourceTIDs maps timeline resources to stable pseudo-thread IDs so the
// viewer shows one row per resource.
var resourceTIDs = map[string]int{"pcie": 1, "gpu": 2, "cpu": 3}

// WriteChromeTrace serializes the timeline as a Chrome trace-event JSON
// array, loadable in chrome://tracing or https://ui.perfetto.dev for
// interactive inspection of the zig-zag overlap.
func (tl Timeline) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(tl.Events))
	for _, e := range tl.Events {
		tid, ok := resourceTIDs[e.Resource]
		if !ok {
			return fmt.Errorf("offload: unknown resource %q in timeline", e.Resource)
		}
		events = append(events, chromeEvent{
			Name:        e.Label,
			Phase:       "X",
			TimestampUS: e.Start * 1e6,
			DurationUS:  e.Duration() * 1e6,
			PID:         1,
			TID:         tid,
			Category:    e.Resource,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
