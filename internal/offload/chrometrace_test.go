package offload

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/tensor"
)

func TestWriteChromeTrace(t *testing.T) {
	r := Run{GPU: hw.A100, Host: hw.SPRMax9468, Model: model.OPT30B,
		Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	tl, err := r.Trace(model.Decode, 128)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != len(tl.Events) {
		t.Fatalf("wrote %d events, timeline has %d", len(events), len(tl.Events))
	}
	cats := map[string]bool{}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("event phase %v, want X", e["ph"])
		}
		if e["dur"].(float64) < 0 {
			t.Fatal("negative duration")
		}
		cats[e["cat"].(string)] = true
	}
	for _, want := range []string{"pcie", "gpu", "cpu"} {
		if !cats[want] {
			t.Errorf("missing %s events", want)
		}
	}
}

func TestWriteChromeTraceRejectsUnknownResource(t *testing.T) {
	tl := Timeline{Events: []Event{{Resource: "fpga", Label: "x", Start: 0, End: 1}}}
	if err := tl.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("unknown resource must error")
	}
}
