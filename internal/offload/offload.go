// Package offload models FlexGen-style offloading-based LLM inference
// (§III, §V): model weights, activations and the KV cache live in host CPU
// memory and stream to the GPU over PCIe on demand. It implements the
// placement policy (which weights stay GPU-resident), the zig-zag block
// schedule's compute/transfer overlap, FlexGen's CPU delegation of
// attention over the host-resident KV cache, and the execution-time
// breakdown of Fig 18.
package offload

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// hostAttentionBWGBs is the effective memory bandwidth of FlexGen's
// CPU-delegated decode attention over the host's DDR: a non-AMX,
// torch-CPU attention kernel sustains a modest fraction of STREAM.
const hostAttentionBWGBs = 40.0

// residentPackFraction is how much of the GPU's free memory the placement
// policy fills with weights when it packs weights at all; the rest absorbs
// fragmentation and transient buffers.
const residentPackFraction = 0.95

// smallBatchThreshold separates FlexGen's two published operating points:
// latency-oriented small-batch configs pin all weights host-side
// (--percent 0 100), while throughput-oriented batched configs pack free
// GPU memory with weights.
const smallBatchThreshold = 4

// Run describes one offloaded GPU inference point. Host is the CPU server
// holding the offloaded tensors (and computing delegated attention).
type Run struct {
	GPU                 hw.GPU
	Host                hw.CPU
	Model               model.Config
	Batch               int
	InputLen, OutputLen int
	Weights             tensor.DType
	// Compress4Bit enables FlexGen's group-wise 4-bit weight compression:
	// weights stream over PCIe at a quarter of their BF16 size and
	// dequantize on the GPU (FlexGen reports negligible accuracy loss).
	// This is the lever that can flip large-model offloading back ahead
	// of the CPU — see EXPERIMENTS.md's Fig 21 discussion.
	Compress4Bit bool
}

// Plan is the derived placement: how many GB of weights stay GPU-resident
// versus stream over PCIe every forward pass.
type Plan struct {
	WeightsGB        float64
	ResidentGB       float64
	StreamedGB       float64
	ResidentFraction float64
	// StreamWireGB is the bytes that actually cross the link per pass —
	// StreamedGB, or a quarter of it under 4-bit compression.
	StreamWireGB float64
	// KVOnHost is always true in this policy: the KV cache stays in host
	// memory and attention over it runs on the host CPU (FlexGen's CPU
	// delegation).
	KVOnHost bool
}

// Plan computes the weight placement for the run.
func (r Run) Plan() Plan {
	weights := float64(r.Model.WeightBytes(r.Weights)) / 1e9
	storedWeights := weights
	if r.Compress4Bit {
		// Compression applies at rest too: both residency and streaming
		// operate on the 4-bit form (dequantized tile by tile on the GPU).
		storedWeights = weights / 4
	}
	p := Plan{WeightsGB: weights, KVOnHost: true}
	free := r.GPU.MemGB - r.GPU.WorkspaceGB - r.activationGB()
	if free < 0 {
		free = 0
	}
	var residentStored float64
	if storedWeights <= free {
		residentStored = storedWeights // fits entirely: no offloading needed
	} else if r.Batch >= smallBatchThreshold {
		residentStored = minF(storedWeights, residentPackFraction*free)
	}
	storedRatio := weights / storedWeights
	p.ResidentGB = residentStored * storedRatio // report in BF16-equivalent GB
	p.StreamedGB = weights - p.ResidentGB
	p.StreamWireGB = (storedWeights - residentStored)
	if weights > 0 {
		p.ResidentFraction = p.ResidentGB / weights
	}
	return p
}

// activationGB estimates peak activation memory on the GPU.
func (r Run) activationGB() float64 {
	rows := float64(r.Batch) * float64(r.InputLen)
	return rows * float64(r.Model.DFF) * 2 * 3 / 1e9
}

// Needed reports whether the model actually requires offloading on this
// GPU (weights exceed free GPU memory).
func (r Run) Needed() bool {
	return r.Plan().StreamedGB > 0
}

// stepCost summarizes one forward pass scheduled through the zig-zag
// pipeline.
type stepCost struct {
	seconds  float64
	transfer float64 // PCIe transfer demand
	compute  float64 // GPU compute + host-delegated attention
	stall    float64 // non-overlapped transfer time ("data loading")
}

// buildLayers converts an op list into the per-layer work items the
// pipeline schedules: each decoder block streams its share of the
// non-resident weights and runs its linear ops on the GPU, with attention
// delegated to the host CPU; per-pass activation/KV traffic spreads evenly
// across layers.
func (r Run) buildLayers(ops []model.Op, plan Plan, extraPCIeGB float64) []layerWork {
	link := r.GPU.PCIe.Achieved(r.Batch) * 1e9
	gpuBW := r.GPU.BandwidthGBs * r.GPU.MemEff * 1e9
	L := r.Model.Layers
	var gpuCompute, hostAttn float64
	for _, o := range ops {
		if o.Attention {
			// Delegated to the host CPU over the host-resident KV cache.
			hostAttn += float64(o.IOBytes) / (hostAttentionBWGBs * 1e9)
			continue
		}
		compute := o.FLOPs() / r.GPU.Compute.EffectiveFLOPS(o.M, o.N, o.K)
		mem := float64(o.WeightBytes+o.IOBytes) / gpuBW
		gpuCompute += maxF(compute, mem)
	}
	transferPerLayer := (plan.StreamWireGB + extraPCIeGB) * 1e9 / link / float64(L)
	layers := make([]layerWork, L)
	for i := range layers {
		layers[i] = layerWork{
			transfer: transferPerLayer,
			gpu:      gpuCompute / float64(L),
			cpu:      hostAttn / float64(L),
		}
	}
	return layers
}

// price schedules one pass through the zig-zag pipeline: layer ℓ+1's
// weights stream over PCIe while layer ℓ computes, and the reported
// data-loading stall is the compute side's idle time.
func (r Run) price(ops []model.Op, plan Plan, extraPCIeGB float64) stepCost {
	tl := runPipeline(r.buildLayers(ops, plan, extraPCIeGB), false)
	overhead := r.GPU.StepOverheadMS / 1e3
	return stepCost{
		seconds:  tl.Makespan + overhead,
		transfer: tl.LinkBusy,
		compute:  tl.GPUBusy + tl.CPUBusy + overhead,
		stall:    tl.Stall,
	}
}

// Trace schedules one forward pass and returns its full event timeline
// for inspection (ctx is the KV length for decode passes; ignored for
// prefill).
func (r Run) Trace(ph model.Phase, ctx int) (Timeline, error) {
	if err := r.validate(); err != nil {
		return Timeline{}, err
	}
	plan := r.Plan()
	var ops []model.Op
	extra := float64(r.Batch) * float64(r.Model.DModel) * 2 * 2 / 1e9
	if ph == model.Prefill {
		ops = r.Model.Ops(model.Prefill, r.Batch, r.InputLen, 0, r.Weights)
		extra = float64(r.Model.KVCacheBytes(r.InputLen, r.Batch, tensor.BF16)) / 1e9
	} else {
		if ctx <= 0 {
			ctx = r.InputLen
		}
		ops = r.Model.Ops(model.Decode, r.Batch, 1, ctx, r.Weights)
	}
	return runPipeline(r.buildLayers(ops, plan, extra), true), nil
}

// Simulate prices the offloaded run and returns metrics with the Fig 18
// compute/transfer breakdown populated.
func (r Run) Simulate() (metrics.Result, error) {
	if err := r.validate(); err != nil {
		return metrics.Result{}, err
	}
	plan := r.Plan()

	// Prefill: one pass over the prompt. Besides streamed weights, the
	// prompt's KV cache ships back to host memory.
	kvPromptGB := float64(r.Model.KVCacheBytes(r.InputLen, r.Batch, tensor.BF16)) / 1e9
	pre := r.price(r.Model.Ops(model.Prefill, r.Batch, r.InputLen, 0, r.Weights),
		plan, kvPromptGB)

	// Decode: one pass per output token; each step ships the new token's
	// activations both ways (small) on top of the streamed weights.
	actGB := float64(r.Batch) * float64(r.Model.DModel) * 2 * 2 / 1e9
	var dec stepCost
	for step := 1; step < r.OutputLen; step++ {
		s := r.price(r.Model.Ops(model.Decode, r.Batch, 1, r.InputLen+step, r.Weights),
			plan, actGB)
		dec.seconds += s.seconds
		dec.transfer += s.transfer
		dec.compute += s.compute
		dec.stall += s.stall
	}

	res := metrics.New(r.GPU.Name+"+offload", r.Model.Name, r.Batch,
		r.InputLen, r.OutputLen, pre.seconds, dec.seconds)
	res.TransferSeconds = pre.stall + dec.stall
	res.ComputeSeconds = res.Latency.E2E - res.TransferSeconds
	return res, nil
}

func (r Run) validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("offload: non-positive batch/input/output for %s", r.Model.Name)
	}
	hostGB := r.Host.TotalMemoryGB() * float64(r.Host.Sockets)
	needGB := float64(r.Model.WeightBytes(r.Weights)+
		r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16)) / 1e9
	if needGB > hostGB {
		return fmt.Errorf("offload: %s needs %.0f GB host memory, %s has %.0f",
			r.Model.Name, needGB, r.Host.Name, hostGB)
	}
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
