package offload

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func run(g hw.GPU, m model.Config, batch int) Run {
	return Run{GPU: g, Host: hw.SPRMax9468, Model: m, Batch: batch,
		InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
}

func cpuResult(t *testing.T, m model.Config, batch int) metrics.Result {
	t.Helper()
	r := perfmodel.CPURun{
		Model: m,
		Setup: memsim.Config{CPU: hw.SPRMax9468, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad},
		Batch: batch, InputLen: 128, OutputLen: 32, Weights: tensor.BF16,
	}
	res, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustSim(t *testing.T, r Run) metrics.Result {
	t.Helper()
	res, err := r.Simulate()
	if err != nil {
		t.Fatalf("%s on %s: %v", r.Model.Name, r.GPU.Name, err)
	}
	return res
}

func TestPlanPolicy(t *testing.T) {
	// OPT-13B (26 GB) fits on A100-40GB: nothing streams.
	p := run(hw.A100, model.OPT13B, 1).Plan()
	if p.StreamedGB != 0 || p.ResidentFraction != 1 {
		t.Errorf("OPT-13B on A100 should be fully resident: %+v", p)
	}
	// OPT-30B (60 GB) on A100 at batch 1: latency config pins all weights
	// host-side.
	p = run(hw.A100, model.OPT30B, 1).Plan()
	if p.ResidentGB != 0 || p.StreamedGB < 55 {
		t.Errorf("OPT-30B on A100 b=1 should stream everything: %+v", p)
	}
	// At batch 16 the policy packs free GPU memory with weights.
	p16 := run(hw.A100, model.OPT30B, 16).Plan()
	if p16.ResidentGB <= 0 || p16.ResidentGB >= p16.WeightsGB {
		t.Errorf("OPT-30B on A100 b=16 should be partially resident: %+v", p16)
	}
	if p16.StreamedGB >= p.StreamedGB {
		t.Error("batched plan must stream less than the batch-1 plan")
	}
	if !p.KVOnHost || !p16.KVOnHost {
		t.Error("KV cache must stay host-side")
	}
}

func TestNeeded(t *testing.T) {
	if !run(hw.A100, model.OPT30B, 1).Needed() {
		t.Error("OPT-30B on A100 needs offloading")
	}
	if run(hw.H100, model.OPT30B, 1).Needed() {
		t.Error("OPT-30B fits on H100-80GB")
	}
	if !run(hw.H100, model.OPT66B, 1).Needed() {
		t.Error("OPT-66B on H100 needs offloading")
	}
}

// TestOPT30BA100Anchor pins the paper's headline Fig 17 result: for
// OPT-30B at batch 1, the SPR CPU cuts latency ~92.1 % vs the offloading
// A100 (12.7× throughput).
func TestOPT30BA100Anchor(t *testing.T) {
	gpu := mustSim(t, run(hw.A100, model.OPT30B, 1))
	cpu := cpuResult(t, model.OPT30B, 1)
	speedup := gpu.Latency.E2E / cpu.Latency.E2E
	if speedup < 9 || speedup > 16 {
		t.Errorf("CPU speedup over A100+offload = %.1fx, paper 12.7x "+
			"(gpu %.1fs cpu %.1fs)", speedup, gpu.Latency.E2E, cpu.Latency.E2E)
	}
}

// TestOPT66BH100Anchor pins the second Fig 17 anchor: for OPT-66B at batch
// 1, the CPU cuts latency ~80.1 % vs the offloading H100 (5× throughput).
func TestOPT66BH100Anchor(t *testing.T) {
	gpu := mustSim(t, run(hw.H100, model.OPT66B, 1))
	cpu := cpuResult(t, model.OPT66B, 1)
	speedup := gpu.Latency.E2E / cpu.Latency.E2E
	if speedup < 3.5 || speedup > 6.5 {
		t.Errorf("CPU speedup over H100+offload = %.1fx, paper 5x "+
			"(gpu %.1fs cpu %.1fs)", speedup, gpu.Latency.E2E, cpu.Latency.E2E)
	}
}

// TestFig18BreakdownShape: the PCIe data-loading share must start near
// the top of the paper's band at batch 1 and fall substantially by batch
// 32 (zig-zag overlap + pipelining), for both configurations of Fig 18.
func TestFig18BreakdownShape(t *testing.T) {
	cases := []struct {
		gpu  hw.GPU
		m    model.Config
		lo1  float64 // minimum fraction at batch 1
		hi32 float64 // maximum fraction at batch 32
	}{
		{hw.A100, model.OPT30B, 0.85, 0.80},
		{hw.H100, model.OPT66B, 0.85, 0.80},
	}
	for _, c := range cases {
		f1 := mustSim(t, run(c.gpu, c.m, 1)).PCIeFraction()
		f32 := mustSim(t, run(c.gpu, c.m, 32)).PCIeFraction()
		if f1 < c.lo1 || f1 > 0.99 {
			t.Errorf("%s/%s b=1: PCIe fraction %.2f outside [%.2f, 0.99]",
				c.gpu.Name, c.m.Name, f1, c.lo1)
		}
		if f32 >= f1 {
			t.Errorf("%s/%s: PCIe fraction must fall with batch (%.2f -> %.2f)",
				c.gpu.Name, c.m.Name, f1, f32)
		}
		if f32 > c.hi32 {
			t.Errorf("%s/%s b=32: PCIe fraction %.2f above %.2f",
				c.gpu.Name, c.m.Name, f32, c.hi32)
		}
		if f32 < 0.2 {
			t.Errorf("%s/%s b=32: PCIe fraction %.2f implausibly low",
				c.gpu.Name, c.m.Name, f32)
		}
	}
}

// TestLlama70BCrossover reproduces Fig 21's Key Finding #5: at batch 16
// the offloading H100 overtakes the CPU on LLaMA2-70B once the input is
// long enough, while the A100 never does.
func TestLlama70BCrossover(t *testing.T) {
	cpuAt := func(in int) float64 {
		r := perfmodel.CPURun{
			Model: model.Llama70B,
			Setup: memsim.Config{CPU: hw.SPRMax9468, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad},
			Batch: 16, InputLen: in, OutputLen: 32, Weights: tensor.BF16,
		}
		res, err := r.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.E2E
	}
	gpuAt := func(g hw.GPU, in int) float64 {
		rr := run(g, model.Llama70B, 16)
		rr.InputLen = in
		return mustSim(t, rr).Latency.E2E
	}
	// H100 must win at some input length ≥ 256 within the sweep.
	won := false
	for _, in := range []int{256, 512, 1024} {
		if gpuAt(hw.H100, in) < cpuAt(in) {
			won = true
			break
		}
	}
	if !won {
		t.Error("H100+offload never overtakes CPU on LLaMA2-70B b=16 (paper: ≥256)")
	}
	// A100 must lose across the whole sweep.
	for _, in := range []int{128, 256, 512, 1024} {
		if gpuAt(hw.A100, in) < cpuAt(in) {
			t.Errorf("A100+offload beat CPU at input %d; paper says it never does", in)
		}
	}
}

// TestBatchedOffloadImprovesThroughput: zig-zag overlap plus pipelining
// must raise offloaded tokens/s with batch size.
func TestBatchedOffloadImprovesThroughput(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 4, 16, 32} {
		res := mustSim(t, run(hw.A100, model.OPT30B, b))
		if res.Throughput.E2E <= prev {
			t.Errorf("batch %d: offloaded throughput %.2f not above %.2f",
				b, res.Throughput.E2E, prev)
		}
		prev = res.Throughput.E2E
	}
}

// TestCompression4Bit: compressed streaming quarters the wire bytes and
// must make offloaded decode dramatically faster; uncompressed plans are
// unchanged.
func TestCompression4Bit(t *testing.T) {
	plain := run(hw.H100, model.OPT66B, 1)
	comp := plain
	comp.Compress4Bit = true

	pp, cp := plain.Plan(), comp.Plan()
	if pp.StreamWireGB != pp.StreamedGB {
		t.Error("uncompressed wire bytes must equal streamed bytes")
	}
	if cp.StreamWireGB > pp.StreamWireGB/3 {
		t.Errorf("compressed wire %.1f GB should be ~1/4 of %.1f GB",
			cp.StreamWireGB, pp.StreamWireGB)
	}
	rPlain := mustSim(t, plain)
	rComp := mustSim(t, comp)
	if rComp.Latency.TPOT > rPlain.Latency.TPOT/2 {
		t.Errorf("compression should at least halve TPOT: %.2fs vs %.2fs",
			rComp.Latency.TPOT, rPlain.Latency.TPOT)
	}
	// OPT-30B compressed (15 GB) fits the A100 outright.
	c30 := run(hw.A100, model.OPT30B, 1)
	c30.Compress4Bit = true
	if c30.Plan().StreamWireGB != 0 {
		t.Error("compressed OPT-30B should be fully A100-resident")
	}
}

// TestCompressionExplainsFig21: with 4-bit compression (which FlexGen
// supports and the paper's H100 runs plausibly used), the H100 overtakes
// the CPU on LLaMA2-70B at batch 16 already at short inputs — the
// EXPERIMENTS.md hypothesis for the crossover-position gap.
func TestCompressionExplainsFig21(t *testing.T) {
	cpu := cpuResult(t, model.Llama70B, 16)
	comp := run(hw.H100, model.Llama70B, 16)
	comp.Compress4Bit = true
	gpu := mustSim(t, comp)
	if gpu.Latency.E2E >= cpu.Latency.E2E {
		t.Errorf("compressed H100 (%.1fs) should beat CPU (%.1fs) at in=128",
			gpu.Latency.E2E, cpu.Latency.E2E)
	}
}

func TestValidation(t *testing.T) {
	r := run(hw.A100, model.OPT30B, 0)
	if _, err := r.Simulate(); err == nil {
		t.Error("zero batch must fail")
	}
	// OPT-175B (350 GB) exceeds the SPR host's 640 GB? It fits; use a
	// host-capacity violation via huge KV instead.
	r = run(hw.A100, model.OPT175B, 32)
	r.InputLen = 4096
	if _, err := r.Simulate(); err == nil {
		t.Error("working set beyond host memory must fail")
	}
	r = Run{GPU: hw.A100, Host: hw.SPRMax9468, Model: model.Config{Name: "bad"},
		Batch: 1, InputLen: 1, OutputLen: 1}
	if _, err := r.Simulate(); err == nil {
		t.Error("invalid model must fail")
	}
}
