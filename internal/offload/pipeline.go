package offload

import (
	"fmt"
	"strings"
)

// Event is one scheduled interval on an execution resource in the zig-zag
// pipeline: a weight transfer on the PCIe link, a layer's GEMMs on the
// GPU, or delegated attention on the host CPU.
type Event struct {
	Resource string // "pcie", "gpu", "cpu"
	Label    string // e.g. "xfer L12", "compute L12"
	Start    float64
	End      float64
}

// Duration returns the event's length in seconds.
func (e Event) Duration() float64 { return e.End - e.Start }

// Timeline is the event trace of one forward pass under the zig-zag
// schedule. It is what Fig 18's breakdown aggregates.
type Timeline struct {
	Events []Event
	// Makespan is the pass's total wall-clock time.
	Makespan float64
	// LinkBusy, GPUBusy and CPUBusy are per-resource busy times.
	LinkBusy, GPUBusy, CPUBusy float64
	// Stall is the time the compute side idles waiting for transfers —
	// the paper's "data loading" time.
	Stall float64
}

// layerWork is the per-layer cost split the pipeline schedules.
type layerWork struct {
	transfer float64 // PCIe seconds for this layer's streamed weights
	gpu      float64 // GPU seconds for the layer's linear ops
	cpu      float64 // host seconds for the layer's delegated attention
}

// runPipeline schedules one pass layer by layer: transfers are serialized
// on the link and prefetched ahead of compute (zig-zag: layer ℓ+1 streams
// while layer ℓ computes); each layer's compute needs its transfer done
// and the previous layer's compute done (GPU) — delegated attention runs
// on the host between the layer's QKV and projection, so it serializes
// into the layer's critical path.
func runPipeline(layers []layerWork, trace bool) Timeline {
	var tl Timeline
	var linkFree, computeFree float64
	for i, w := range layers {
		xferStart := linkFree
		xferEnd := xferStart + w.transfer
		linkFree = xferEnd
		tl.LinkBusy += w.transfer

		// Compute can begin once the layer's weights are present and the
		// previous layer has finished.
		start := computeFree
		if xferEnd > start {
			tl.Stall += xferEnd - start
			start = xferEnd
		}
		end := start + w.gpu + w.cpu
		computeFree = end
		tl.GPUBusy += w.gpu
		tl.CPUBusy += w.cpu
		if trace {
			if w.transfer > 0 {
				tl.Events = append(tl.Events, Event{"pcie", fmt.Sprintf("xfer L%d", i), xferStart, xferEnd})
			}
			if w.gpu > 0 {
				tl.Events = append(tl.Events, Event{"gpu", fmt.Sprintf("compute L%d", i), start, start + w.gpu})
			}
			if w.cpu > 0 {
				tl.Events = append(tl.Events, Event{"cpu", fmt.Sprintf("attn L%d", i), start + w.gpu, end})
			}
		}
		if end > tl.Makespan {
			tl.Makespan = end
		}
		if linkFree > tl.Makespan {
			tl.Makespan = linkFree
		}
	}
	return tl
}

// Render draws the timeline as a proportional text Gantt chart, one row
// per resource, for human inspection of the overlap structure.
func (tl Timeline) Render(width int) string {
	if width <= 0 {
		width = 80
	}
	if tl.Makespan == 0 || len(tl.Events) == 0 {
		return "(empty timeline)\n"
	}
	rows := map[string][]rune{}
	for _, res := range []string{"pcie", "gpu", "cpu"} {
		rows[res] = []rune(strings.Repeat(".", width))
	}
	mark := map[string]rune{"pcie": 'X', "gpu": 'C', "cpu": 'A'}
	for _, e := range tl.Events {
		row, ok := rows[e.Resource]
		if !ok {
			continue
		}
		lo := int(e.Start / tl.Makespan * float64(width))
		hi := int(e.End / tl.Makespan * float64(width))
		if hi >= width {
			hi = width - 1
		}
		for i := lo; i <= hi; i++ {
			row[i] = mark[e.Resource]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.3fs  (link busy %.3fs, gpu %.3fs, cpu %.3fs, stall %.3fs)\n",
		tl.Makespan, tl.LinkBusy, tl.GPUBusy, tl.CPUBusy, tl.Stall)
	for _, res := range []string{"pcie", "gpu", "cpu"} {
		fmt.Fprintf(&b, "%-5s |%s|\n", res, string(rows[res]))
	}
	return b.String()
}
