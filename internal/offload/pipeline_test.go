package offload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/tensor"
)

func uniform(n int, xfer, gpu, cpu float64) []layerWork {
	ls := make([]layerWork, n)
	for i := range ls {
		ls[i] = layerWork{transfer: xfer, gpu: gpu, cpu: cpu}
	}
	return ls
}

// TestPipelineTransferBound: with compute ≪ transfer, the makespan is the
// serialized transfer time and the compute side stalls for nearly all of
// it (the batch-1 decode regime).
func TestPipelineTransferBound(t *testing.T) {
	tl := runPipeline(uniform(10, 1.0, 0.01, 0), false)
	if math.Abs(tl.Makespan-10.01) > 0.02 {
		t.Errorf("makespan = %v, want ≈10.01 (serialized transfers + last compute)", tl.Makespan)
	}
	if tl.Stall < 9.9 {
		t.Errorf("stall = %v, want ≈10 (compute always waiting)", tl.Stall)
	}
}

// TestPipelineComputeBound: with transfer ≪ compute, transfers hide fully
// behind compute except the first layer's fill.
func TestPipelineComputeBound(t *testing.T) {
	tl := runPipeline(uniform(10, 0.01, 1.0, 0), false)
	if math.Abs(tl.Makespan-10.01) > 0.02 {
		t.Errorf("makespan = %v, want ≈10.01", tl.Makespan)
	}
	if tl.Stall > 0.02 {
		t.Errorf("stall = %v, want ≈0.01 (only the first fill)", tl.Stall)
	}
}

// TestPipelineBalanced: when transfer == compute per layer the pipeline
// runs lockstep with one-layer fill latency.
func TestPipelineBalanced(t *testing.T) {
	tl := runPipeline(uniform(8, 0.5, 0.5, 0), false)
	if math.Abs(tl.Makespan-4.5) > 0.01 {
		t.Errorf("makespan = %v, want 4.5 (8×0.5 + 0.5 fill)", tl.Makespan)
	}
}

// TestPipelineInvariants: for any work mix, the makespan is bounded below
// by each resource's busy time and above by the fully-serialized sum.
func TestPipelineInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		var layers []layerWork
		for i := 0; i+2 < len(raw) && len(layers) < 32; i += 3 {
			layers = append(layers, layerWork{
				transfer: float64(raw[i]) / 100,
				gpu:      float64(raw[i+1]) / 100,
				cpu:      float64(raw[i+2]) / 100,
			})
		}
		tl := runPipeline(layers, true)
		var serial float64
		for _, l := range layers {
			serial += l.transfer + l.gpu + l.cpu
		}
		const eps = 1e-9
		if tl.Makespan+eps < tl.LinkBusy || tl.Makespan+eps < tl.GPUBusy+tl.CPUBusy {
			return false
		}
		if tl.Makespan > serial+eps {
			return false
		}
		// Stall + busy compute = compute-side end time ≤ makespan.
		if tl.Stall+tl.GPUBusy+tl.CPUBusy > tl.Makespan+eps {
			return false
		}
		// Events must be well-formed and within the makespan.
		for _, e := range tl.Events {
			if e.End < e.Start || e.End > tl.Makespan+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPipelineEmptyAndRender(t *testing.T) {
	tl := runPipeline(nil, true)
	if tl.Makespan != 0 {
		t.Error("empty pipeline must have zero makespan")
	}
	if !strings.Contains(tl.Render(40), "empty") {
		t.Error("empty render marker missing")
	}
	tl = runPipeline(uniform(4, 0.5, 0.2, 0.1), true)
	out := tl.Render(60)
	for _, want := range []string{"pcie", "gpu", "cpu", "makespan", "X", "C", "A"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if out2 := tl.Render(0); !strings.Contains(out2, "makespan") {
		t.Error("zero width must default")
	}
}

func TestTraceDecodeVsPrefill(t *testing.T) {
	r := Run{GPU: hw.A100, Host: hw.SPRMax9468, Model: model.OPT30B,
		Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	dec, err := r.Trace(model.Decode, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Events) == 0 || dec.Stall == 0 {
		t.Error("batch-1 decode trace should show transfer stalls")
	}
	pre, err := r.Trace(model.Prefill, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Makespan <= 0 {
		t.Error("prefill trace empty")
	}
	// Stall share must be lower in prefill (compute hides transfers).
	if pre.Stall/pre.Makespan >= dec.Stall/dec.Makespan {
		t.Errorf("prefill stall share %.2f should be below decode %.2f",
			pre.Stall/pre.Makespan, dec.Stall/dec.Makespan)
	}
	// Default ctx path.
	if _, err := r.Trace(model.Decode, 0); err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.Batch = 0
	if _, err := bad.Trace(model.Decode, 1); err == nil {
		t.Error("invalid run must fail to trace")
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 1.5, End: 2.25}
	if e.Duration() != 0.75 {
		t.Error("duration wrong")
	}
}
