package overload

// brownout.go is the degradation ladder: under sustained pressure the
// controller climbs through reversible service degradations one rung at
// a time, and descends with hysteresis once pressure clears — never
// flapping, never skipping rungs. Each rung's action is queried by the
// layer that owns it (the cluster router stops hedging, the gateway
// caps batch outputs / evicts the prefix cache / sheds batch traffic).

import "time"

// Brownout ladder levels. The ladder always moves one rung per
// transition, so observers see every intermediate level.
const (
	// LevelNominal is normal service: no degradations active.
	LevelNominal = 0
	// LevelNoHedge disables request hedging — the cheapest reversible
	// saving: hedges burn duplicate compute exactly when there is none
	// to spare.
	LevelNoHedge = 1
	// LevelCapBatch additionally clamps batch-class max_tokens to
	// Config.BatchTokenCap; truncated responses carry
	// finish_reason "brownout".
	LevelCapBatch = 2
	// LevelEvictCache additionally evicts the prefix cache aggressively,
	// trading recomputation for reclaimable KV headroom.
	LevelEvictCache = 3
	// LevelShedBatch additionally refuses batch-class admissions
	// outright — the last rung before indiscriminate shedding.
	LevelShedBatch = 4

	maxLevel = LevelShedBatch
)

// Actions lists the degradations active at a ladder level, most recent
// rung first (for /v1/overload and logs).
func Actions(level int) []string {
	var acts []string
	if level >= LevelShedBatch {
		acts = append(acts, "shed-batch")
	}
	if level >= LevelEvictCache {
		acts = append(acts, "evict-prefix-cache")
	}
	if level >= LevelCapBatch {
		acts = append(acts, "cap-batch-tokens")
	}
	if level >= LevelNoHedge {
		acts = append(acts, "no-hedge")
	}
	return acts
}

// Evaluate advances the ladder from one pressure sample in [0, 1] taken
// at now. Pressure at or above UpThreshold sustained for StepUp climbs
// one rung; pressure at or below DownThreshold sustained for StepDown
// descends one rung; samples inside the hysteresis band hold the level
// and reset both timers, so a load oscillating around the thresholds
// cannot flap the ladder. The return values are the level after the
// sample and the step taken (-1, 0 or +1).
func (c *Controller) Evaluate(pressure float64, now time.Time) (level, step int) {
	if c == nil {
		return 0, 0
	}
	if pressure < 0 {
		pressure = 0
	}
	if pressure > 1 {
		pressure = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastPressure = pressure
	switch {
	case pressure >= c.cfg.UpThreshold:
		c.downSince = time.Time{}
		if c.upSince.IsZero() {
			c.upSince = now
		} else if now.Sub(c.upSince) >= c.cfg.StepUp && c.level < maxLevel {
			c.level++
			c.upSince = now
			c.steps++
			step = 1
			c.m.stepsUp.Inc()
			c.m.level.Set(int64(c.level))
		}
	case pressure <= c.cfg.DownThreshold:
		c.upSince = time.Time{}
		if c.downSince.IsZero() {
			c.downSince = now
		} else if now.Sub(c.downSince) >= c.cfg.StepDown && c.level > LevelNominal {
			c.level--
			c.downSince = now
			c.steps++
			step = -1
			c.m.stepsDown.Inc()
			c.m.level.Set(int64(c.level))
		}
	default:
		c.upSince = time.Time{}
		c.downSince = time.Time{}
	}
	return c.level, step
}

// Level is the current brownout ladder level. It does not advance the
// ladder; pair with Evaluate where a live pressure sample is available.
func (c *Controller) Level() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// ShedsClass reports whether a class is refused admission at a level:
// only batch, and only at LevelShedBatch.
func ShedsClass(level int, cls Class) bool {
	return level >= LevelShedBatch && cls == Batch
}

// CapFor returns the max_tokens clamp a level imposes on a class
// (0 = uncapped), given the configured batch cap.
func CapFor(level int, cls Class, batchCap int) int {
	if level >= LevelCapBatch && cls == Batch {
		return batchCap
	}
	return 0
}
