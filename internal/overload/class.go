package overload

import "fmt"

// Class is a request's SLO class. Numeric order is priority order:
// lower values are more latency-sensitive and are admitted, queued and
// kept ahead of higher values under pressure.
type Class int

const (
	// Interactive is user-facing latency-sensitive traffic (chat UIs).
	Interactive Class = iota
	// Standard is the default class for unlabeled traffic.
	Standard
	// Batch is throughput traffic (offline evaluation, backfills): the
	// first class capped, shed and evicted when the gateway browns out.
	Batch

	numClasses
)

// String names the class; ParseClass is its inverse.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return "standard"
	}
}

// share is the fraction of the adaptive concurrency limit the class may
// occupy: under a shrinking limit batch hits its ceiling first, then
// standard, and interactive keeps the full limit.
func (c Class) share() float64 {
	switch c {
	case Interactive:
		return 1.0
	case Batch:
		return 0.6
	default:
		return 0.85
	}
}

// ParseClass resolves an SLO-class name from the API surface (the
// `priority` body field or the X-SLO-Class header). The empty string is
// rejected — callers decide their own default; use ClassOf for the
// tolerant mapping.
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "standard":
		return Standard, nil
	case "batch":
		return Batch, nil
	default:
		return 0, fmt.Errorf("overload: unknown SLO class %q (want interactive, standard or batch)", s)
	}
}

// ClassOf maps an already-validated class string to its Class, treating
// the empty string (and anything unrecognized) as Standard. The API
// layer validates user input with ParseClass; internal callers that see
// a free-form gateway Request use this.
func ClassOf(s string) Class {
	if c, err := ParseClass(s); err == nil {
		return c
	}
	return Standard
}
