// Package overload is the gateway's overload-control layer: SLO-class
// admission priorities, an AIMD adaptive concurrency limiter, and a
// graceful-degradation (brownout) ladder.
//
// The paper's context makes the need concrete: CPU inference is hard
// throughput-limited (prefill compute-bound, decode memory-bandwidth-
// bound), so past the saturation knee queueing delay balloons and blunt
// backpressure — queue-full 429s, KV-watermark 503s — collapses goodput
// for all traffic equally. This package keeps SLO-met throughput near
// its peak when offered load exceeds capacity by (a) prioritizing
// latency-sensitive classes at admission, (b) shrinking the front-door
// concurrency limit when observed TTFT busts per-class SLO targets,
// before requests time out deep in a lane, and (c) stepping through
// reversible service degradations under sustained pressure instead of
// failing over a cliff.
//
// The Controller is the single object the gateway wires in: Acquire/
// Release gate admission, Observe feeds the limiter's latency signal,
// and Evaluate advances the brownout ladder from a pressure sample.
// All methods are safe for concurrent use.
package overload

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Config tunes the controller. The zero value is usable: withDefaults
// fills every field the caller leaves unset.
type Config struct {
	// InteractiveTTFT, StandardTTFT and BatchTTFT are the per-class
	// wall-clock TTFT SLO targets the limiter steers toward (at the
	// deployment's timescale). Defaults 500ms / 2s / 10s.
	InteractiveTTFT time.Duration
	StandardTTFT    time.Duration
	BatchTTFT       time.Duration

	// MinLimit and MaxLimit clamp the adaptive concurrency limit;
	// InitialLimit is the starting point. Defaults 4 / 256 / 32.
	MinLimit, MaxLimit, InitialLimit int
	// DecreaseFactor is the multiplicative backoff applied to the limit
	// on an SLO-busting sample (default 0.9); DecreaseCooldown bounds
	// how often a burst of late samples may shrink it (default 100ms).
	DecreaseFactor   float64
	DecreaseCooldown time.Duration

	// UpThreshold and DownThreshold bound the brownout hysteresis band:
	// pressure at or above UpThreshold sustained for StepUp climbs one
	// rung; pressure at or below DownThreshold sustained for StepDown
	// descends one rung; in between the ladder holds. Defaults 0.9 /
	// 0.5 and 250ms / 1s.
	UpThreshold, DownThreshold float64
	StepUp, StepDown           time.Duration

	// BatchTokenCap is the max_tokens clamp applied to batch-class
	// requests at LevelCapBatch and above (finish_reason "brownout").
	// Default 16.
	BatchTokenCap int

	// Registry receives the controller's instruments; a private registry
	// is created when nil.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.InteractiveTTFT <= 0 {
		c.InteractiveTTFT = 500 * time.Millisecond
	}
	if c.StandardTTFT <= 0 {
		c.StandardTTFT = 2 * time.Second
	}
	if c.BatchTTFT <= 0 {
		c.BatchTTFT = 10 * time.Second
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 256
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = 32
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.9
	}
	if c.DecreaseCooldown <= 0 {
		c.DecreaseCooldown = 100 * time.Millisecond
	}
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		c.UpThreshold = 0.9
	}
	if c.DownThreshold <= 0 || c.DownThreshold >= c.UpThreshold {
		c.DownThreshold = 0.5
	}
	if c.StepUp <= 0 {
		c.StepUp = 250 * time.Millisecond
	}
	if c.StepDown <= 0 {
		c.StepDown = time.Second
	}
	if c.BatchTokenCap <= 0 {
		c.BatchTokenCap = 16
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Target returns the TTFT SLO for a class.
func (c Config) Target(cls Class) time.Duration {
	switch cls {
	case Interactive:
		return c.InteractiveTTFT
	case Batch:
		return c.BatchTTFT
	default:
		return c.StandardTTFT
	}
}

// classStats is per-class bookkeeping, guarded by the controller mutex.
type classStats struct {
	admitted, limited, shed uint64
	ttftEWMA                float64 // seconds; 0 until the first sample
}

// Controller combines the limiter and the brownout ladder.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    float64
	inflight int
	lastDec  time.Time
	classes  [numClasses]classStats

	level        int
	upSince      time.Time
	downSince    time.Time
	lastPressure float64
	steps        uint64 // total ladder transitions, up or down

	m instruments
}

// New returns a controller with the limit at cfg.InitialLimit and the
// ladder at LevelNominal.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:   cfg,
		limit: float64(cfg.InitialLimit),
		m:     newInstruments(cfg.Registry),
	}
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Acquire requests one admission slot for a class. Lower-priority
// classes see the front door close first: a class may only admit while
// the live concurrency is inside its share of the adaptive limit
// (interactive 100%, standard 85%, batch 60%), so when the limiter
// shrinks under SLO pressure, batch is rejected while interactive still
// fits. The caller must Release the slot at the request's terminal
// outcome when Acquire returns true.
func (c *Controller) Acquire(cls Class) bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	allowed := c.limit * cls.share()
	if allowed < 1 {
		allowed = 1
	}
	if float64(c.inflight+1) > allowed {
		c.classes[cls].limited++
		c.m.limited.Inc()
		return false
	}
	c.inflight++
	c.classes[cls].admitted++
	c.m.inflight.Set(int64(c.inflight))
	return true
}

// Release returns a slot taken by a successful Acquire.
func (c *Controller) Release(cls Class) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.inflight > 0 {
		c.inflight--
	}
	c.m.inflight.Set(int64(c.inflight))
	c.mu.Unlock()
}

// Observe feeds one completed request's wall-clock TTFT into the AIMD
// loop: a sample inside the class SLO target nudges the limit up
// additively (gradient-style, ~1/limit per good sample); a late sample
// shrinks it multiplicatively, at most once per DecreaseCooldown so one
// burst of queued stale samples cannot collapse the limit to the floor.
func (c *Controller) Observe(cls Class, ttft time.Duration, now time.Time) {
	if c == nil {
		return
	}
	target := c.cfg.Target(cls)
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.classes[cls]
	s := ttft.Seconds()
	if st.ttftEWMA == 0 {
		st.ttftEWMA = s
	} else {
		st.ttftEWMA = 0.8*st.ttftEWMA + 0.2*s
	}
	if ttft > target {
		if now.Sub(c.lastDec) >= c.cfg.DecreaseCooldown {
			c.limit *= c.cfg.DecreaseFactor
			c.lastDec = now
		}
	} else {
		c.limit += 1.0 / c.limit
	}
	if c.limit < float64(c.cfg.MinLimit) {
		c.limit = float64(c.cfg.MinLimit)
	}
	if c.limit > float64(c.cfg.MaxLimit) {
		c.limit = float64(c.cfg.MaxLimit)
	}
	c.m.limit.Set(int64(c.limit))
}

// ExpectedTTFT is the smoothed wall-clock TTFT recently observed for a
// class (0 before any sample) — the deadline-eviction estimate for
// whether a queued request can still meet its deadline.
func (c *Controller) ExpectedTTFT(cls Class) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.classes[cls].ttftEWMA * float64(time.Second))
}

// NoteShed counts one class-ordered shed (a queued victim evicted for a
// higher class, or a batch request refused at LevelShedBatch).
func (c *Controller) NoteShed(cls Class) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.classes[cls].shed++
	c.mu.Unlock()
	c.m.shed.Inc()
}

// Snapshot reports the controller's observable state for GET
// /v1/overload. It does not advance the ladder; callers that can
// compute a live pressure sample should Evaluate first.
func (c *Controller) Snapshot() Status {
	if c == nil {
		return Status{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Enabled:       true,
		BrownoutLevel: c.level,
		Actions:       Actions(c.level),
		Pressure:      c.lastPressure,
		Limit:         c.limit,
		Inflight:      c.inflight,
		BrownoutSteps: c.steps,
	}
	for cls := Interactive; cls < numClasses; cls++ {
		cs := c.classes[cls]
		st.Classes = append(st.Classes, ClassStatus{
			Class:        cls.String(),
			Share:        cls.share(),
			TTFTSLOMs:    float64(c.cfg.Target(cls)) / float64(time.Millisecond),
			TTFTEWMAMs:   cs.ttftEWMA * 1e3,
			Admitted:     cs.admitted,
			Limited:      cs.limited,
			Shed:         cs.shed,
			MaxTokensCap: c.capFor(cls),
		})
	}
	return st
}

// capFor is the active max_tokens clamp for a class (0 = uncapped).
// Callers hold c.mu.
func (c *Controller) capFor(cls Class) int {
	if cls == Batch && c.level >= LevelCapBatch {
		return c.cfg.BatchTokenCap
	}
	return 0
}

// Status is the observable controller state (GET /v1/overload).
type Status struct {
	Enabled       bool          `json:"enabled"`
	BrownoutLevel int           `json:"brownout_level"`
	Actions       []string      `json:"actions,omitempty"`
	Pressure      float64       `json:"pressure"`
	Limit         float64       `json:"concurrency_limit"`
	Inflight      int           `json:"inflight"`
	BrownoutSteps uint64        `json:"brownout_steps_total"`
	Classes       []ClassStatus `json:"classes,omitempty"`
}

// ClassStatus is one SLO class's view in Status.
type ClassStatus struct {
	Class        string  `json:"class"`
	Share        float64 `json:"share"`
	TTFTSLOMs    float64 `json:"ttft_slo_ms"`
	TTFTEWMAMs   float64 `json:"ttft_ewma_ms"`
	Admitted     uint64  `json:"admitted"`
	Limited      uint64  `json:"limited"`
	Shed         uint64  `json:"shed"`
	MaxTokensCap int     `json:"max_tokens_cap,omitempty"`
}

// instruments is the controller's metric set.
type instruments struct {
	level, limit, inflight *metrics.Gauge
	limited, shed          *metrics.Counter
	stepsUp, stepsDown     *metrics.Counter
}

func newInstruments(r *metrics.Registry) instruments {
	return instruments{
		level:     r.Gauge("overload_brownout_level", "current brownout ladder level (0 = nominal)"),
		limit:     r.Gauge("overload_concurrency_limit", "adaptive admission concurrency limit (AIMD)"),
		inflight:  r.Gauge("overload_inflight", "requests holding an overload admission slot"),
		limited:   r.Counter("overload_limited_total", "admissions rejected by the adaptive concurrency limiter"),
		shed:      r.Counter("overload_shed_total", "requests shed class-ordered under overload"),
		stepsUp:   r.Counter("overload_brownout_steps_up_total", "brownout ladder steps up (degrading)"),
		stepsDown: r.Counter("overload_brownout_steps_down_total", "brownout ladder steps down (recovering)"),
	}
}
