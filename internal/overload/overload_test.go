package overload

import (
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		ok   bool
	}{
		{"interactive", Interactive, true},
		{"standard", Standard, true},
		{"batch", Batch, true},
		{"", 0, false},
		{"Interactive", 0, false},
		{"bulk", 0, false},
	} {
		got, err := ParseClass(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseClass(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if ClassOf("") != Standard || ClassOf("junk") != Standard || ClassOf("batch") != Batch {
		t.Error("ClassOf default mapping broken")
	}
}

func TestLimiterClassShares(t *testing.T) {
	c := New(Config{MinLimit: 4, MaxLimit: 10, InitialLimit: 10})
	// With limit 10: batch fits 6 slots, standard 8 (cumulative with the
	// batch slots), interactive the full 10.
	var got [numClasses]int
	fill := func(cls Class) {
		for c.Acquire(cls) {
			got[cls]++
		}
	}
	fill(Batch)
	if got[Batch] != 6 {
		t.Errorf("batch acquired %d slots at limit 10, want 6", got[Batch])
	}
	fill(Standard)
	if got[Batch]+got[Standard] != 8 {
		t.Errorf("batch+standard hold %d slots, want 8", got[Batch]+got[Standard])
	}
	fill(Interactive)
	total := got[Batch] + got[Standard] + got[Interactive]
	if total != 10 {
		t.Errorf("total slots %d, want the full limit 10", total)
	}
	// Interactive is the last class rejected and the first readmitted.
	if c.Acquire(Batch) || c.Acquire(Interactive) {
		t.Fatal("acquired past the limit")
	}
	c.Release(Batch)
	if c.Acquire(Batch) {
		t.Error("batch readmitted while the pool sits above its share")
	}
	if !c.Acquire(Interactive) {
		t.Error("interactive denied the freed slot")
	}
}

func TestAIMDLimitReactsToTTFT(t *testing.T) {
	c := New(Config{MinLimit: 2, MaxLimit: 64, InitialLimit: 16,
		StandardTTFT: 100 * time.Millisecond, DecreaseCooldown: time.Millisecond})
	now := time.Now()
	// SLO-busting samples shrink the limit multiplicatively.
	for i := 0; i < 40; i++ {
		now = now.Add(2 * time.Millisecond)
		c.Observe(Standard, time.Second, now)
	}
	st := c.Snapshot()
	if st.Limit != 2 {
		t.Errorf("limit %g after sustained SLO misses, want the floor 2", st.Limit)
	}
	// Good samples recover it additively.
	for i := 0; i < 20000; i++ {
		now = now.Add(time.Millisecond)
		c.Observe(Standard, 10*time.Millisecond, now)
	}
	if st = c.Snapshot(); st.Limit != 64 {
		t.Errorf("limit %g after sustained good samples, want the ceiling 64", st.Limit)
	}
	if st.Classes[int(Standard)].TTFTEWMAMs <= 0 {
		t.Error("TTFT EWMA not tracked")
	}
	if c.ExpectedTTFT(Standard) <= 0 {
		t.Error("ExpectedTTFT not tracked")
	}
}

func TestBrownoutLadderStepsAndHysteresis(t *testing.T) {
	c := New(Config{StepUp: 10 * time.Millisecond, StepDown: 10 * time.Millisecond})
	now := time.Now()
	// Sustained pressure climbs one rung per StepUp, never skipping.
	prev := 0
	for i := 0; i < 200 && c.Level() < LevelShedBatch; i++ {
		now = now.Add(2 * time.Millisecond)
		level, step := c.Evaluate(1.0, now)
		if step > 1 || level-prev > 1 {
			t.Fatalf("ladder skipped a rung: %d -> %d", prev, level)
		}
		prev = level
	}
	if c.Level() != LevelShedBatch {
		t.Fatalf("ladder stuck at %d under sustained pressure", c.Level())
	}
	// Pressure inside the hysteresis band holds the level indefinitely.
	for i := 0; i < 50; i++ {
		now = now.Add(2 * time.Millisecond)
		if level, step := c.Evaluate(0.7, now); step != 0 || level != LevelShedBatch {
			t.Fatalf("level moved to %d inside the hysteresis band", level)
		}
	}
	// Clear pressure descends one rung per StepDown back to nominal.
	for i := 0; i < 200 && c.Level() > LevelNominal; i++ {
		now = now.Add(2 * time.Millisecond)
		if _, step := c.Evaluate(0.0, now); step > 0 {
			t.Fatal("ladder climbed while pressure was clear")
		}
	}
	if c.Level() != LevelNominal {
		t.Fatalf("ladder stuck at %d after pressure cleared", c.Level())
	}
	if st := c.Snapshot(); st.BrownoutSteps != 2*LevelShedBatch {
		t.Errorf("step counter %d, want %d", st.BrownoutSteps, 2*LevelShedBatch)
	}
}

func TestLadderActions(t *testing.T) {
	if len(Actions(LevelNominal)) != 0 {
		t.Error("nominal level reports active degradations")
	}
	if got := Actions(LevelShedBatch); len(got) != 4 {
		t.Errorf("full ladder reports %v, want 4 actions", got)
	}
	if !ShedsClass(LevelShedBatch, Batch) || ShedsClass(LevelShedBatch, Interactive) ||
		ShedsClass(LevelEvictCache, Batch) {
		t.Error("ShedsClass gating wrong")
	}
	if CapFor(LevelCapBatch, Batch, 16) != 16 || CapFor(LevelCapBatch, Standard, 16) != 0 ||
		CapFor(LevelNoHedge, Batch, 16) != 0 {
		t.Error("CapFor gating wrong")
	}
}

func TestSnapshotShape(t *testing.T) {
	c := New(Config{})
	c.Acquire(Interactive)
	c.NoteShed(Batch)
	st := c.Snapshot()
	if !st.Enabled || st.Inflight != 1 || len(st.Classes) != int(numClasses) {
		t.Fatalf("snapshot %+v malformed", st)
	}
	if st.Classes[int(Batch)].Shed != 1 || st.Classes[int(Interactive)].Admitted != 1 {
		t.Errorf("per-class counters not reflected: %+v", st.Classes)
	}
	var nilC *Controller
	if nilC.Snapshot().Enabled || !nilC.Acquire(Batch) || nilC.Level() != 0 {
		t.Error("nil controller not inert")
	}
	nilC.Release(Batch)
	nilC.Observe(Batch, time.Second, time.Now())
	nilC.NoteShed(Batch)
	if l, s := nilC.Evaluate(1, time.Now()); l != 0 || s != 0 {
		t.Error("nil controller ladder moved")
	}
}
