package overload

// quick_test.go drives the brownout ladder with randomized pressure
// histories under testing/quick and checks the invariants the rest of
// the system leans on: the ladder never skips rungs in either
// direction, stays inside [LevelNominal, LevelShedBatch], and — the
// no-flapping guarantee — once pressure clears, levels step down
// monotonically to nominal and never rise again.

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQuickLadderNeverSkipsRungs(t *testing.T) {
	cfg := Config{StepUp: 4 * time.Millisecond, StepDown: 4 * time.Millisecond}
	prop := func(samples []uint8) bool {
		c := New(cfg)
		now := time.Unix(0, 0)
		prev := c.Level()
		for _, s := range samples {
			// Sample pressures across [0, 1] and steps across 1..8ms so
			// the sequence crosses both hysteresis timers.
			p := float64(s%101) / 100
			now = now.Add(time.Duration(1+s%8) * time.Millisecond)
			level, step := c.Evaluate(p, now)
			if step < -1 || step > 1 || level != prev+step {
				return false
			}
			if level < LevelNominal || level > LevelShedBatch {
				return false
			}
			prev = level
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLadderMonotoneStepDownAfterPressureClears(t *testing.T) {
	cfg := Config{StepUp: 4 * time.Millisecond, StepDown: 4 * time.Millisecond}
	prop := func(samples []uint8) bool {
		c := New(cfg)
		now := time.Unix(0, 0)
		// Arbitrary pressure history first — whatever state it leaves the
		// ladder in, recovery below must be monotone.
		for _, s := range samples {
			now = now.Add(time.Duration(1+s%8) * time.Millisecond)
			c.Evaluate(float64(s%101)/100, now)
		}
		prev := c.Level()
		sawDown := false
		for i := 0; i < 4*(maxLevel+1); i++ {
			now = now.Add(cfg.StepDown)
			level, step := c.Evaluate(0, now)
			if step > 0 || level > prev {
				return false // climbed after pressure cleared: flapping
			}
			if step < 0 {
				sawDown = true
			}
			prev = level
		}
		// And recovery completes: enough clear samples reach nominal.
		return prev == LevelNominal && (sawDown || c.Level() == LevelNominal)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLimiterStaysBounded(t *testing.T) {
	cfg := Config{MinLimit: 2, MaxLimit: 32, InitialLimit: 8,
		StandardTTFT: 50 * time.Millisecond, DecreaseCooldown: time.Millisecond}
	prop := func(ops []uint16) bool {
		c := New(cfg)
		now := time.Unix(0, 0)
		held := map[Class]int{}
		for _, op := range ops {
			cls := Class(op % uint16(numClasses))
			now = now.Add(time.Duration(op%7) * time.Millisecond)
			switch (op / 3) % 3 {
			case 0:
				if c.Acquire(cls) {
					held[cls]++
				}
			case 1:
				if held[cls] > 0 {
					c.Release(cls)
					held[cls]--
				}
			case 2:
				c.Observe(cls, time.Duration(op)*time.Millisecond, now)
			}
			st := c.Snapshot()
			if st.Limit < float64(cfg.MinLimit) || st.Limit > float64(cfg.MaxLimit) {
				return false
			}
			if st.Inflight != held[Interactive]+held[Standard]+held[Batch] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
