package perfmodel

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// OpAnalysis is the roofline breakdown of one operator under a CPU
// configuration: where it sits relative to the ridge point and which
// resource bounds it.
type OpAnalysis struct {
	Name       string
	FLOPs      float64
	Bytes      float64
	Intensity  float64 // FLOPs/byte
	ComputeSec float64
	MemorySec  float64
	Seconds    float64 // max of the two
	MemBound   bool
	Path       string // compute path used (amx-bf16 / avx512-bf16)

	// WeightSec and IOSec split MemorySec into the weight-streaming term
	// and the activation/KV IO term (MemorySec = WeightSec + IOSec).
	// Multi-row passes over one sequence — speculative verification —
	// stream the weights once while the IO term scales with the row
	// count, so pricing them correctly needs the split.
	WeightSec float64
	IOSec     float64
}

// Analyze prices each op of one forward pass and returns the per-op
// roofline breakdown, in op order. ph selects the phase; seq is the
// prompt length for prefill, ctx the KV length for decode.
func (r CPURun) Analyze(ph model.Phase, seq, ctx int) ([]OpAnalysis, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	bw, err := r.Setup.Bandwidth(r.FootprintGB())
	if err != nil {
		return nil, err
	}
	scale := r.Setup.ComputeScale()
	ops := r.Model.Ops(ph, r.Batch, seq, ctx, r.Weights)
	out := make([]OpAnalysis, 0, len(ops))
	for _, o := range ops {
		path := r.Setup.CPU.BestPath(o.M, o.N, o.K)
		compute := o.FLOPs() / (path.EffectiveFLOPS(o.M, o.N, o.K) * scale)
		io := float64(o.IOBytes)
		if !o.Attention {
			io *= activationSpillFraction
		}
		mem := float64(o.WeightBytes) + io
		memSec := mem / (bw.EffectiveGBs * 1e9)
		a := OpAnalysis{
			Name:       o.Name,
			FLOPs:      o.FLOPs(),
			Bytes:      mem,
			ComputeSec: compute,
			MemorySec:  memSec,
			Seconds:    maxF(compute, memSec),
			MemBound:   memSec > compute,
			Path:       path.Name,
			WeightSec:  float64(o.WeightBytes) / (bw.EffectiveGBs * 1e9),
			IOSec:      io / (bw.EffectiveGBs * 1e9),
		}
		if mem > 0 {
			a.Intensity = o.FLOPs() / mem
		}
		out = append(out, a)
	}
	return out, nil
}

// RidgeIntensity returns the arithmetic intensity (FLOPs/byte) at which
// the configuration transitions from memory- to compute-bound, for a
// given representative GEMM shape.
func (r CPURun) RidgeIntensity(m, n, k int64) (float64, error) {
	bw, err := r.Setup.Bandwidth(r.FootprintGB())
	if err != nil {
		return 0, err
	}
	path := r.Setup.CPU.BestPath(m, n, k)
	flops := path.EffectiveFLOPS(m, n, k) * r.Setup.ComputeScale()
	return flops / (bw.EffectiveGBs * 1e9), nil
}

// RenderAnalysis formats an op breakdown as a text table.
func RenderAnalysis(ops []OpAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %10s %10s %6s  %s\n",
		"op", "GFLOPs", "MB", "AI", "compute", "memory", "bound", "path")
	var total float64
	for _, o := range ops {
		bound := "comp"
		if o.MemBound {
			bound = "mem"
		}
		fmt.Fprintf(&b, "%-14s %10.2f %10.1f %8.1f %9.2fms %9.2fms %6s  %s\n",
			o.Name, o.FLOPs/1e9, o.Bytes/1e6, o.Intensity,
			o.ComputeSec*1e3, o.MemorySec*1e3, bound, o.Path)
		total += o.Seconds
	}
	fmt.Fprintf(&b, "total: %.2f ms\n", total*1e3)
	return b.String()
}
