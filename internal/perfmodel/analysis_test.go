package perfmodel

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestAnalyzePhases(t *testing.T) {
	r := sprRun(model.OPT13B, 1, 128, 32)
	dec, err := r.Analyze(model.Decode, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Batch-1 decode: every weight-carrying op must be memory-bound.
	for _, o := range dec {
		if o.Name == "qkv_proj" || o.Name == "ffn_up" || o.Name == "ffn_down" {
			if !o.MemBound {
				t.Errorf("decode %s should be memory-bound (AI %.1f)", o.Name, o.Intensity)
			}
		}
		if o.Seconds < o.ComputeSec || o.Seconds < o.MemorySec {
			t.Errorf("%s: Seconds not the max", o.Name)
		}
	}
	// Batch-8 prefill: the big linear ops must be compute-bound on AMX.
	r8 := sprRun(model.OPT13B, 8, 128, 32)
	pre, err := r8.Analyze(model.Prefill, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawComputeBoundAMX bool
	for _, o := range pre {
		if !o.MemBound && o.Path == "amx-bf16" {
			sawComputeBoundAMX = true
		}
	}
	if !sawComputeBoundAMX {
		t.Error("batch-8 prefill should have compute-bound AMX ops")
	}
}

func TestAnalyzeIntensityOrdering(t *testing.T) {
	r := sprRun(model.OPT13B, 8, 128, 32)
	pre, _ := r.Analyze(model.Prefill, 128, 0)
	dec, _ := r.Analyze(model.Decode, 1, 128)
	ai := func(ops []OpAnalysis, name string) float64 {
		for _, o := range ops {
			if o.Name == name {
				return o.Intensity
			}
		}
		t.Fatalf("op %s missing", name)
		return 0
	}
	if ai(pre, "qkv_proj") <= ai(dec, "qkv_proj") {
		t.Error("prefill AI must exceed decode AI for the same op")
	}
}

func TestRidgeIntensity(t *testing.T) {
	r := sprRun(model.OPT13B, 8, 128, 32)
	ridge, err := r.RidgeIntensity(1024, 5120, 5120)
	if err != nil {
		t.Fatal(err)
	}
	// AMX effective ~130 TFLOPS over ~430 GB/s → ridge around 300
	// FLOPs/byte.
	if ridge < 100 || ridge > 600 {
		t.Errorf("ridge intensity = %.0f, want O(300)", ridge)
	}
	bad := r
	bad.Batch = 0
	if _, err := bad.Analyze(model.Decode, 1, 1); err == nil {
		t.Error("invalid run must fail analysis")
	}
}

func TestRenderAnalysis(t *testing.T) {
	r := sprRun(model.Llama13B, 2, 128, 32)
	ops, err := r.Analyze(model.Decode, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAnalysis(ops)
	for _, want := range []string{"qkv_proj", "lm_head", "total:", "bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
