// Package perfmodel prices LLM inference on the modeled platforms with a
// per-operator roofline: every GEMM-shaped op of a forward pass costs the
// maximum of its compute time (peak × shape efficiency × core scaling) and
// its memory time (bytes ÷ effective bandwidth from the NUMA model). The
// prefill phase is one pass over the prompt; the decode phase is priced
// step by step as the KV cache grows.
//
// The same pricing produces the emulated performance counters: FLOPs and
// the dominant ISA give instruction counts, and the streamed bytes give
// LLC miss counts (package counters).
package perfmodel

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// activationSpillFraction is the share of linear-layer activation traffic
// that misses the LLC. Weight and KV streams evict activation lines, but
// blocked GEMM kernels keep most activation reuse cache-resident.
const activationSpillFraction = 0.25

// CPURun describes one CPU simulation point.
type CPURun struct {
	Model model.Config
	Setup memsim.Config
	Batch int
	// InputLen and OutputLen are the prompt and generation lengths; the
	// paper's default workload is 128/32.
	InputLen, OutputLen int
	// Weights is the parameter storage type (BF16 unless quantized).
	Weights tensor.DType
}

// phaseCost accumulates the pricing of one or more forward passes.
type phaseCost struct {
	seconds        float64
	computeSeconds float64 // time the phase would take at infinite bandwidth
	boundedCompute float64 // Σ min(compute, op time): time cores do work
	flops          float64
	memBytes       float64 // streamed past the LLC
	readBytes      float64
	writeBytes     float64
}

func (p *phaseCost) add(q phaseCost) {
	p.seconds += q.seconds
	p.computeSeconds += q.computeSeconds
	p.boundedCompute += q.boundedCompute
	p.flops += q.flops
	p.memBytes += q.memBytes
	p.readBytes += q.readBytes
	p.writeBytes += q.writeBytes
}

// FootprintGB returns the working set of the run in GB: weights plus the
// final KV cache plus activation workspace.
func (r CPURun) FootprintGB() float64 {
	weights := float64(r.Model.WeightBytes(r.Weights))
	kv := float64(r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16))
	act := float64(r.Batch*r.InputLen*r.Model.DModel) * 2 * 4 // a few live layers
	return (weights + kv + act) / 1e9
}

// pricePass prices one forward pass on a CPU.
func pricePass(cpu hw.CPU, scale float64, bwGBs float64, ops []model.Op) phaseCost {
	var c phaseCost
	for _, o := range ops {
		path := cpu.BestPath(o.M, o.N, o.K)
		eff := path.EffectiveFLOPS(o.M, o.N, o.K) * scale
		compute := o.FLOPs() / eff
		mem := float64(o.WeightBytes)
		if o.Attention {
			mem += float64(o.IOBytes)
		} else {
			mem += float64(o.IOBytes) * activationSpillFraction
		}
		memTime := mem / (bwGBs * 1e9)
		opTime := compute
		if memTime > opTime {
			opTime = memTime
		}
		c.seconds += opTime
		c.computeSeconds += compute
		c.boundedCompute += minF(compute, opTime)
		c.flops += o.FLOPs()
		c.memBytes += mem
		c.readBytes += float64(o.WeightBytes) + float64(o.IOBytes)*0.6
		c.writeBytes += float64(o.IOBytes) * 0.4
	}
	c.seconds += cpu.StepOverheadMS / 1e3
	return c
}

// Simulate prices the run and returns the full metric set including
// emulated performance counters.
func (r CPURun) Simulate() (metrics.Result, error) {
	if err := r.validate(); err != nil {
		return metrics.Result{}, err
	}
	bw, err := r.Setup.Bandwidth(r.FootprintGB())
	if err != nil {
		return metrics.Result{}, err
	}
	scale := r.Setup.ComputeScale()

	prefill := pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
		r.Model.Ops(model.Prefill, r.Batch, r.InputLen, 0, r.Weights))

	var decode phaseCost
	for step := 1; step < r.OutputLen; step++ {
		ctx := r.InputLen + step
		decode.add(pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
			r.Model.Ops(model.Decode, r.Batch, 1, ctx, r.Weights)))
	}

	res := metrics.New(r.Setup.CPU.Name, r.Model.Name, r.Batch, r.InputLen,
		r.OutputLen, prefill.seconds, decode.seconds)
	res.ComputeSeconds = prefill.seconds + decode.seconds
	res.Counters = r.deriveCounters(prefill, decode, bw)
	return res, nil
}

// PhaseCounters prices a single phase of the run and derives its emulated
// counter report in isolation: the prefill pass when prefill is true,
// otherwise the decode steps. This is the per-phase attribution the
// serving trace attaches to prefill/decode spans — Simulate's counters
// blend both phases, which would wash out exactly the prefill-vs-decode
// contrast the paper measures.
func (r CPURun) PhaseCounters(prefill bool) (counters.Report, error) {
	if err := r.validate(); err != nil {
		return counters.Report{}, err
	}
	bw, err := r.Setup.Bandwidth(r.FootprintGB())
	if err != nil {
		return counters.Report{}, err
	}
	scale := r.Setup.ComputeScale()
	var pre, dec phaseCost
	if prefill {
		pre = pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
			r.Model.Ops(model.Prefill, r.Batch, r.InputLen, 0, r.Weights))
	} else {
		for step := 1; step < r.OutputLen; step++ {
			ctx := r.InputLen + step
			dec.add(pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
				r.Model.Ops(model.Decode, r.Batch, 1, ctx, r.Weights)))
		}
	}
	return r.deriveCounters(pre, dec, bw), nil
}

func (r CPURun) validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if err := r.Setup.Validate(); err != nil {
		return err
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("perfmodel: non-positive batch/input/output in run for %s", r.Model.Name)
	}
	return nil
}

func (r CPURun) deriveCounters(prefill, decode phaseCost, bw memsim.Bandwidth) counters.Report {
	fpi := float64(counters.FLOPsPerInstrAVX512)
	if r.Setup.CPU.HasAMX() {
		fpi = counters.FLOPsPerInstrAMX
	}
	total := prefill
	total.add(decode)
	return counters.Derive(counters.Inputs{
		FLOPs:           total.flops,
		FLOPsPerInstr:   fpi,
		BytesFromMemory: total.memBytes,
		BytesRead:       total.readBytes,
		BytesWritten:    total.writeBytes,
		ComputeSeconds:  total.boundedCompute,
		TotalSeconds:    total.seconds,
		RemoteFraction:  bw.RemoteFraction,
		UPIFraction:     bw.UPIFraction,
		UPIBandwidthGBs: r.Setup.CPU.UPIGBs,
		ActiveCores:     r.Setup.Cores,
		TotalCores:      r.Setup.CPU.CoresPerSocket * r.Setup.CPU.Sockets,
	})
}

// GPURun describes one GPU simulation point with the model fully resident
// in GPU memory. Models that do not fit must use package offload instead.
type GPURun struct {
	GPU                 hw.GPU
	Model               model.Config
	Batch               int
	InputLen, OutputLen int
	Weights             tensor.DType
}

// Fits reports whether weights and the final KV cache fit in GPU memory.
func (r GPURun) Fits() bool {
	need := float64(r.Model.WeightBytes(r.Weights)+
		r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16)) / 1e9
	return need <= r.GPU.MemGB-r.GPU.WorkspaceGB
}

func (r GPURun) pricePass(ops []model.Op) float64 {
	bwBytes := r.GPU.BandwidthGBs * r.GPU.MemEff * 1e9
	var t float64
	for _, o := range ops {
		compute := o.FLOPs() / r.GPU.Compute.EffectiveFLOPS(o.M, o.N, o.K)
		mem := float64(o.WeightBytes)
		if o.Attention {
			mem += float64(o.IOBytes)
		} else {
			mem += float64(o.IOBytes) * activationSpillFraction
		}
		t += maxF(compute, mem/bwBytes)
	}
	return t + r.GPU.StepOverheadMS/1e3
}

// Simulate prices the resident-GPU run.
func (r GPURun) Simulate() (metrics.Result, error) {
	if err := r.Model.Validate(); err != nil {
		return metrics.Result{}, err
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return metrics.Result{}, fmt.Errorf("perfmodel: non-positive batch/input/output in GPU run")
	}
	if !r.Fits() {
		return metrics.Result{}, fmt.Errorf("perfmodel: %s does not fit on %s; use offload",
			r.Model.Name, r.GPU.Name)
	}
	prefill := r.pricePass(r.Model.Ops(model.Prefill, r.Batch, r.InputLen, 0, r.Weights))
	var decode float64
	for step := 1; step < r.OutputLen; step++ {
		decode += r.pricePass(r.Model.Ops(model.Decode, r.Batch, 1, r.InputLen+step, r.Weights))
	}
	res := metrics.New(r.GPU.Name, r.Model.Name, r.Batch, r.InputLen, r.OutputLen,
		prefill, decode)
	res.ComputeSeconds = prefill + decode
	return res, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
