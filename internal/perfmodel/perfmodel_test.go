package perfmodel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

func sprRun(m model.Config, batch, in, out int) CPURun {
	return CPURun{
		Model: m,
		Setup: memsim.Config{CPU: hw.SPRMax9468, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad},
		Batch: batch, InputLen: in, OutputLen: out, Weights: tensor.BF16,
	}
}

func iclRun(m model.Config, batch, in, out int) CPURun {
	return CPURun{
		Model: m,
		Setup: memsim.Config{CPU: hw.ICL8352Y, Cores: 32, Mem: memsim.DDROnly, Cluster: memsim.Quad},
		Batch: batch, InputLen: in, OutputLen: out, Weights: tensor.BF16,
	}
}

func mustSim(t *testing.T, r CPURun) metrics.Result {
	t.Helper()
	res, err := r.Simulate()
	if err != nil {
		t.Fatalf("%s: %v", r.Model.Name, err)
	}
	return res
}

// TestSPRvsICLWindows checks the headline Fig 8–10 ratios: averaged over
// models and batch sizes, SPR must beat ICL by the paper's reported bands.
func TestSPRvsICLWindows(t *testing.T) {
	models := []model.Config{model.OPT6B7, model.Llama7B, model.OPT13B, model.Llama13B}
	batches := []int{1, 2, 4, 8, 16, 32}
	var e2eSum, preSum, decSum float64
	n := 0
	for _, m := range models {
		for _, b := range batches {
			spr := mustSim(t, sprRun(m, b, 128, 32))
			icl := mustSim(t, iclRun(m, b, 128, 32))
			e2eSum += icl.Latency.E2E / spr.Latency.E2E
			preSum += icl.Latency.TTFT / spr.Latency.TTFT
			decSum += icl.Latency.TPOT / spr.Latency.TPOT
			n++
		}
	}
	e2e, pre, dec := e2eSum/float64(n), preSum/float64(n), decSum/float64(n)
	// Paper: E2E latency −68.4…−84.1 % → speedup 3.2–6.3×.
	if e2e < 3.0 || e2e > 6.5 {
		t.Errorf("mean SPR/ICL E2E speedup = %.2f, paper band 3.2–6.3", e2e)
	}
	// Prefill −84.1…−89 % → 6.3–9.1×.
	if pre < 5.8 || pre > 9.5 {
		t.Errorf("mean SPR/ICL prefill speedup = %.2f, paper band 6.3–9.1", pre)
	}
	// Decode −62.3…−81.7 % → 2.7–5.5×.
	if dec < 2.5 || dec > 5.7 {
		t.Errorf("mean SPR/ICL decode speedup = %.2f, paper band 2.7–5.5", dec)
	}
}

// TestPhaseBoundness: prefill must be compute-bound and decode
// memory-bound on the SPR CPU (the paper's §II-B framing). At batch 1
// with a 128-token prompt even prefill is bounded by streaming the
// weights once, so the compute-bound check uses batch 8 — the regime the
// paper's figures average over.
func TestPhaseBoundness(t *testing.T) {
	r := sprRun(model.OPT13B, 8, 128, 32)
	bw, err := r.Setup.Bandwidth(r.FootprintGB())
	if err != nil {
		t.Fatal(err)
	}
	scale := r.Setup.ComputeScale()
	pre := pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
		r.Model.Ops(model.Prefill, 8, 128, 0, tensor.BF16))
	if pre.computeSeconds < 0.5*pre.seconds {
		t.Errorf("prefill should be compute-bound: compute %.3fs of %.3fs",
			pre.computeSeconds, pre.seconds)
	}
	dec := pricePass(r.Setup.CPU, scale, bw.EffectiveGBs,
		r.Model.Ops(model.Decode, 1, 1, 128, tensor.BF16))
	if dec.computeSeconds > 0.3*dec.seconds {
		t.Errorf("batch-1 decode should be memory-bound: compute %.4fs of %.4fs",
			dec.computeSeconds, dec.seconds)
	}
}

// TestDecodeTPOTRoughlyWeightStreaming: batch-1 TPOT on SPR quad_flat must
// sit near weights/bandwidth — the memory-bound first-order model.
func TestDecodeTPOTRoughlyWeightStreaming(t *testing.T) {
	res := mustSim(t, sprRun(model.Llama13B, 1, 128, 32))
	weights := float64(model.Llama13B.WeightBytes(tensor.BF16)) / 1e9
	floor := weights / (588 * 0.9) // all-HBM upper bandwidth bound
	if res.Latency.TPOT < floor {
		t.Errorf("TPOT %.1fms below physical floor %.1fms", res.Latency.TPOT*1e3, floor*1e3)
	}
	if res.Latency.TPOT > 3*floor {
		t.Errorf("TPOT %.1fms implausibly far above streaming floor %.1fms",
			res.Latency.TPOT*1e3, floor*1e3)
	}
}

// TestThroughputGrowsWithBatch: batching amortizes weight streaming, so
// E2E tokens/s must grow monotonically up to batch 32 on the CPU.
func TestThroughputGrowsWithBatch(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		res := mustSim(t, sprRun(model.Llama13B, b, 128, 32))
		if res.Throughput.E2E <= prev {
			t.Errorf("batch %d: throughput %.1f not above previous %.1f",
				b, res.Throughput.E2E, prev)
		}
		prev = res.Throughput.E2E
	}
}

// TestCountersTrendWithBatch reproduces Figs 11/12: growing batch size
// must lower LLC MPKI and raise core utilization.
func TestCountersTrendWithBatch(t *testing.T) {
	for _, m := range []model.Config{model.Llama13B, model.OPT66B} {
		r1 := mustSim(t, sprRun(m, 1, 128, 32))
		r32 := mustSim(t, sprRun(m, 32, 128, 32))
		if r32.Counters.LLCMPKI >= r1.Counters.LLCMPKI {
			t.Errorf("%s: MPKI must fall with batch (%.2f -> %.2f)",
				m.Name, r1.Counters.LLCMPKI, r32.Counters.LLCMPKI)
		}
		if r32.Counters.CoreUtilization <= r1.Counters.CoreUtilization {
			t.Errorf("%s: core util must rise with batch (%.2f -> %.2f)",
				m.Name, r1.Counters.CoreUtilization, r32.Counters.CoreUtilization)
		}
	}
}

// TestNUMAConfigOrdering reproduces Fig 13: quad_flat is the best of the
// four SPR configurations on E2E latency.
func TestNUMAConfigOrdering(t *testing.T) {
	lat := map[string]float64{}
	for _, mem := range []memsim.MemMode{memsim.Flat, memsim.Cache} {
		for _, cl := range []memsim.ClusterMode{memsim.Quad, memsim.SNC4} {
			r := sprRun(model.Llama13B, 8, 128, 32)
			r.Setup.Mem, r.Setup.Cluster = mem, cl
			res := mustSim(t, r)
			lat[r.Setup.Name()] = res.Latency.E2E
		}
	}
	for name, l := range lat {
		if name != "quad_flat" && l <= lat["quad_flat"] {
			t.Errorf("%s (%.3fs) must be slower than quad_flat (%.3fs)",
				name, l, lat["quad_flat"])
		}
	}
}

// TestCoreSweepOrdering reproduces Fig 14 / Key Finding #3: 48 cores beat
// 12/24, and 96 cores (two sockets) regress.
func TestCoreSweepOrdering(t *testing.T) {
	e2e := map[int]float64{}
	for _, cores := range []int{12, 24, 48, 96} {
		r := sprRun(model.Llama7B, 8, 128, 32)
		r.Setup.Cores = cores
		res := mustSim(t, r)
		e2e[cores] = res.Latency.E2E
	}
	if !(e2e[48] < e2e[24] && e2e[24] < e2e[12]) {
		t.Errorf("latency must improve 12→24→48: %v", e2e)
	}
	if e2e[96] <= e2e[48] {
		t.Errorf("96 cores must regress vs 48: %v", e2e)
	}
	// Paper: 48 cores cut E2E latency by ~59.8 % vs 12 cores.
	red := 1 - e2e[48]/e2e[12]
	if red < 0.45 || red > 0.72 {
		t.Errorf("48-core E2E reduction vs 12 = %.1f%%, paper 59.8%%", red*100)
	}
}

// TestGPUFasterForSmallModels: for models that fit, the H100 must beat the
// SPR CPU at batch 1 (Fig 17, Key Finding #4).
func TestGPUFasterForSmallModels(t *testing.T) {
	for _, m := range []model.Config{model.OPT6B7, model.OPT13B, model.Llama13B} {
		cpu := mustSim(t, sprRun(m, 1, 128, 32))
		g := GPURun{GPU: hw.H100, Model: m, Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
		gres, err := g.Simulate()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if gres.Latency.E2E >= cpu.Latency.E2E {
			t.Errorf("%s: H100 (%.2fs) must beat CPU (%.2fs)",
				m.Name, gres.Latency.E2E, cpu.Latency.E2E)
		}
	}
}

// TestH100OPT13BWindow pins the paper's quantified point: H100 reduces
// OPT-13B batch-1 E2E latency by ~72.8 % vs the SPR CPU (3.7× throughput).
func TestH100OPT13BWindow(t *testing.T) {
	cpu := mustSim(t, sprRun(model.OPT13B, 1, 128, 32))
	g := GPURun{GPU: hw.H100, Model: model.OPT13B, Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	gres, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	red := 1 - gres.Latency.E2E/cpu.Latency.E2E
	if red < 0.60 || red > 0.82 {
		t.Errorf("H100 OPT-13B E2E reduction = %.1f%%, paper 72.8%%", red*100)
	}
	a := GPURun{GPU: hw.A100, Model: model.OPT13B, Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	ares, err := a.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	redA := 1 - ares.Latency.E2E/cpu.Latency.E2E
	if redA < 0.50 || redA > 0.75 {
		t.Errorf("A100 OPT-13B E2E reduction = %.1f%%, paper 65.5%%", redA*100)
	}
	if redA >= red {
		t.Error("A100 must not beat H100")
	}
}

// TestGPURunRejectsOversizedModels: resident simulation must refuse models
// that need offloading.
func TestGPURunRejectsOversizedModels(t *testing.T) {
	g := GPURun{GPU: hw.A100, Model: model.OPT30B, Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	if _, err := g.Simulate(); err == nil {
		t.Error("OPT-30B on A100 must be rejected")
	}
	h := GPURun{GPU: hw.H100, Model: model.OPT30B, Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
	if !h.Fits() {
		t.Error("OPT-30B (60 GB) must fit on H100-80GB")
	}
}

// TestSeqLenSensitivityCPU: CPU prefill latency must grow substantially
// with input length while decode TPOT grows mildly (Fig 20's variability).
// At batch 1 the 128-token prefill is floored by streaming the weights
// once, so 8× longer prompts raise TTFT by ~3–8×, not a full 8×.
func TestSeqLenSensitivityCPU(t *testing.T) {
	short := mustSim(t, sprRun(model.Llama13B, 1, 128, 32))
	long := mustSim(t, sprRun(model.Llama13B, 1, 1024, 32))
	if ratio := long.Latency.TTFT / short.Latency.TTFT; ratio < 3 {
		t.Errorf("TTFT scaling 128→1024 = %.1fx, want ≥3x", ratio)
	}
	if long.Latency.TPOT > 2*short.Latency.TPOT {
		t.Errorf("TPOT grew %.1fx with seq len; decode is weight-bound",
			long.Latency.TPOT/short.Latency.TPOT)
	}
}

func TestValidation(t *testing.T) {
	r := sprRun(model.OPT13B, 0, 128, 32)
	if _, err := r.Simulate(); err == nil {
		t.Error("zero batch must fail")
	}
	r = sprRun(model.Config{Name: "bad"}, 1, 128, 32)
	if _, err := r.Simulate(); err == nil {
		t.Error("invalid model must fail")
	}
	g := GPURun{GPU: hw.H100, Model: model.OPT13B, Batch: -1, InputLen: 128, OutputLen: 32}
	if _, err := g.Simulate(); err == nil {
		t.Error("negative batch must fail on GPU run")
	}
}
