package perfmodel

// phasecounters_test.go covers per-phase counter attribution: the reports
// PhaseCounters derives in isolation must preserve the prefill-vs-decode
// contrast (Figs 4-6) that Simulate's whole-request counters blend away.

import (
	"testing"

	"repro/internal/model"
)

func TestPhaseCountersIsolatePhases(t *testing.T) {
	run := sprRun(model.OPT13B, 4, 512, 32)

	pre, err := run.PhaseCounters(true)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := run.PhaseCounters(false)
	if err != nil {
		t.Fatal(err)
	}

	// Prefill is the compute-heavy phase, decode the memory-bound one:
	// isolated attribution must keep them on opposite sides of the
	// blended whole-request report.
	blended := mustSim(t, run).Counters
	if !(pre.CoreUtilization > blended.CoreUtilization &&
		blended.CoreUtilization > dec.CoreUtilization) {
		t.Errorf("core utilization not ordered prefill %.3f > blended %.3f > decode %.3f",
			pre.CoreUtilization, blended.CoreUtilization, dec.CoreUtilization)
	}
	if dec.LLCMPKI <= pre.LLCMPKI {
		t.Errorf("decode LLC MPKI %.1f <= prefill %.1f; decode should miss more per instruction",
			dec.LLCMPKI, pre.LLCMPKI)
	}
	if dec.MemoryBoundFraction <= pre.MemoryBoundFraction {
		t.Errorf("decode memory-bound %.3f <= prefill %.3f",
			dec.MemoryBoundFraction, pre.MemoryBoundFraction)
	}
}

func TestPhaseCountersValidates(t *testing.T) {
	run := sprRun(model.OPT13B, 0, 128, 8) // zero batch is invalid
	if _, err := run.PhaseCounters(true); err == nil {
		t.Error("invalid run accepted")
	}
}
