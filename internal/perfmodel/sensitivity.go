package perfmodel

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Sensitivity analysis: which hardware parameter actually governs each
// metric? Each platform parameter is perturbed by a small relative step
// and the run re-simulated; the reported elasticity is %Δmetric / %Δparam.
// An elasticity of −1 for TPOT against HBM bandwidth says decode is
// purely bandwidth-bound there — the quantitative form of the paper's
// phase characterization.

// Elasticity is the sensitivity of one metric to one parameter.
type Elasticity struct {
	Parameter string
	TTFT      float64
	TPOT      float64
	E2E       float64
	Thpt      float64
}

// knob is one perturbable platform parameter.
type knob struct {
	name  string
	apply func(c *hw.CPU, factor float64)
}

func cpuKnobs() []knob {
	return []knob{
		{"hbm-bandwidth", func(c *hw.CPU, f float64) { c.HBM.BandwidthGBs *= f }},
		{"ddr-bandwidth", func(c *hw.CPU, f float64) { c.DDR.BandwidthGBs *= f }},
		{"amx-peak", func(c *hw.CPU, f float64) { c.AMX.PeakTFLOPS *= f }},
		{"avx512-peak", func(c *hw.CPU, f float64) { c.AVX512.PeakTFLOPS *= f }},
		{"upi-bandwidth", func(c *hw.CPU, f float64) { c.UPIGBs *= f }},
		{"step-overhead", func(c *hw.CPU, f float64) { c.StepOverheadMS *= f }},
		{"mem-efficiency", func(c *hw.CPU, f float64) { c.MemEff *= f }},
	}
}

// Sensitivities computes parameter elasticities for the run with a +step
// relative perturbation (e.g. 0.1 = +10 %). Results are sorted by |E2E|
// descending.
func (r CPURun) Sensitivities(step float64) ([]Elasticity, error) {
	if step <= 0 {
		return nil, fmt.Errorf("perfmodel: non-positive sensitivity step %g", step)
	}
	base, err := r.Simulate()
	if err != nil {
		return nil, err
	}
	var out []Elasticity
	for _, k := range cpuKnobs() {
		perturbed := r
		cpu := r.Setup.CPU // copy (CPU is a value type)
		k.apply(&cpu, 1+step)
		perturbed.Setup.CPU = cpu
		res, err := perturbed.Simulate()
		if err != nil {
			return nil, err
		}
		el := func(b, p float64) float64 {
			if b == 0 {
				return 0
			}
			return (p - b) / b / step
		}
		out = append(out, Elasticity{
			Parameter: k.name,
			TTFT:      el(base.Latency.TTFT, res.Latency.TTFT),
			TPOT:      el(base.Latency.TPOT, res.Latency.TPOT),
			E2E:       el(base.Latency.E2E, res.Latency.E2E),
			Thpt:      el(base.Throughput.E2E, res.Throughput.E2E),
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		return abs(out[a].E2E) > abs(out[b].E2E)
	})
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
