package perfmodel

import (
	"math"
	"testing"

	"repro/internal/model"
)

func findEl(t *testing.T, els []Elasticity, name string) Elasticity {
	t.Helper()
	for _, e := range els {
		if e.Parameter == name {
			return e
		}
	}
	t.Fatalf("parameter %s missing", name)
	return Elasticity{}
}

// TestDecodeIsHBMBound: for an HBM-resident model at batch 1, TPOT must
// track HBM bandwidth with elasticity ≈ −1 and be insensitive to AMX
// peak — the paper's memory-bound decode, quantified.
func TestDecodeIsHBMBound(t *testing.T) {
	els, err := sprRun(model.Llama13B, 1, 128, 32).Sensitivities(0.1)
	if err != nil {
		t.Fatal(err)
	}
	hbm := findEl(t, els, "hbm-bandwidth")
	if hbm.TPOT > -0.6 {
		t.Errorf("TPOT elasticity to HBM bw = %.2f, want ≲ −0.6", hbm.TPOT)
	}
	amx := findEl(t, els, "amx-peak")
	if math.Abs(amx.TPOT) > 0.15 {
		t.Errorf("TPOT elasticity to AMX peak = %.2f, want ≈0 at batch 1", amx.TPOT)
	}
}

// TestPrefillIsComputeBound: at batch 8, TTFT must be AMX-sensitive and
// barely bandwidth-sensitive.
func TestPrefillIsComputeBound(t *testing.T) {
	els, err := sprRun(model.OPT13B, 8, 128, 32).Sensitivities(0.1)
	if err != nil {
		t.Fatal(err)
	}
	amx := findEl(t, els, "amx-peak")
	if amx.TTFT > -0.4 {
		t.Errorf("TTFT elasticity to AMX peak = %.2f, want ≲ −0.4", amx.TTFT)
	}
	hbm := findEl(t, els, "hbm-bandwidth")
	if hbm.TTFT < -0.5 {
		t.Errorf("TTFT elasticity to HBM bw = %.2f, should be mild at batch 8", hbm.TTFT)
	}
}

// TestSingleSocketIgnoresUPI: UPI bandwidth must not matter on one socket
// with an HBM-resident model.
func TestSingleSocketIgnoresUPI(t *testing.T) {
	els, err := sprRun(model.Llama13B, 4, 128, 32).Sensitivities(0.1)
	if err != nil {
		t.Fatal(err)
	}
	upi := findEl(t, els, "upi-bandwidth")
	if math.Abs(upi.E2E) > 1e-9 {
		t.Errorf("UPI elasticity = %.3f on a single socket", upi.E2E)
	}
}

// TestThroughputMirrorsLatency: throughput elasticity ≈ −E2E elasticity.
func TestThroughputMirrorsLatency(t *testing.T) {
	els, err := sprRun(model.OPT13B, 4, 128, 32).Sensitivities(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range els {
		if math.Abs(e.Thpt+e.E2E) > 0.15*(math.Abs(e.E2E)+0.01) {
			t.Errorf("%s: thpt %.3f vs e2e %.3f not mirrored", e.Parameter, e.Thpt, e.E2E)
		}
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := sprRun(model.OPT13B, 1, 128, 32).Sensitivities(0); err == nil {
		t.Error("zero step must fail")
	}
	bad := sprRun(model.Config{Name: "bad"}, 1, 128, 32)
	if _, err := bad.Sensitivities(0.1); err == nil {
		t.Error("invalid run must fail")
	}
	// Sorted by |E2E| descending.
	els, err := sprRun(model.OPT13B, 1, 128, 32).Sensitivities(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(els); i++ {
		if math.Abs(els[i].E2E) > math.Abs(els[i-1].E2E)+1e-12 {
			t.Fatal("not sorted by |E2E|")
		}
	}
}
