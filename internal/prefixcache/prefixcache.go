// Package prefixcache indexes kvpool blocks by token-prefix hash so
// concurrent requests sharing a system prompt or chat history reuse the
// cached KV instead of recomputing prefill. The paper (IISWC 2024) shows
// prefill is the compute-bound phase on CPUs, so every matched prefix
// token is prefill compute saved — the single biggest serving-throughput
// lever left once decode is batch-amortized.
//
// The index is a radix tree in the SGLang style, at block granularity:
// each node covers exactly one pool block (BlockSize tokens) and is keyed
// by the chained hash of the token prefix up to and including that block.
// A lookup walks the chain of block keys from the root and returns the
// longest matched path; an insert extends the tree with the blocks a
// finished prefill donates. The tree holds one kvpool reference per
// retained block, so eviction can never free a block out from under an
// in-flight fork — a request that adopted the block holds its own
// reference, and the pool only recycles a block when every holder has
// released it. LRU eviction walks unpinned leaves oldest-first; nodes on
// a path a request is still forking from are pinned until that request
// reaches a terminal state.
package prefixcache

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/kvpool"
)

// Segment is one hashable span of a request's token prefix. Requests
// describe their prompt as an ordered list of segments — a shared system
// prompt, each chat message, a prefix-group tag — and two requests share
// cache entries exactly as far as their segment lists agree. A segment
// with Private set ends key production: nothing at or beyond it is ever
// indexed (per-request unique tails, opted-out content).
type Segment struct {
	// ID identifies the segment content. Equal IDs must imply equal
	// token content; producers use content hashes or group names.
	ID string
	// Tokens is the segment's length in tokens.
	Tokens int
	// Private marks content that must not be shared across requests.
	Private bool
}

// BlockKeys chains the segment list into one 64-bit key per full block of
// blockSize tokens. Key i commits to every segment byte covering tokens
// [0, (i+1)*blockSize): a prefix match on keys is a prefix match on
// content. Only whole blocks are keyed — a trailing partial block is
// never shared, so adopted prefixes always fill their blocks exactly.
// Key production stops at the first private segment.
func BlockKeys(segments []Segment, blockSize int) []uint64 {
	if blockSize <= 0 {
		return nil
	}
	shareable := 0
	for _, s := range segments {
		if s.Private || s.Tokens < 0 {
			break
		}
		shareable += s.Tokens
	}
	nblocks := shareable / blockSize
	if nblocks == 0 {
		return nil
	}
	keys := make([]uint64, 0, nblocks)
	h := fnv.New64a()
	covered := 0 // tokens hashed so far
	next := blockSize
	for _, s := range segments {
		if len(keys) == nblocks {
			break
		}
		if s.Private {
			break
		}
		// Commit the segment's identity, then account its tokens;
		// every block boundary the segment crosses snapshots the
		// running hash. Writing the token count binds the key to the
		// tokenization, not just the ID list.
		fmt.Fprintf(h, "%s\x00%d\x1f", s.ID, s.Tokens)
		covered += s.Tokens
		for covered >= next && len(keys) < nblocks {
			fmt.Fprintf(h, "|%d", next)
			keys = append(keys, h.Sum64())
			next += blockSize
		}
	}
	return keys
}

// node is one block of cached prefix. Children are keyed by the chain
// hash of the prefix extended by their block.
type node struct {
	key      uint64
	parent   *node
	children map[uint64]*node
	block    int   // pool block ID this node retains
	depth    int   // 1-based block depth (root has 0)
	lastUse  int64 // logical clock of last lookup touch
	pins     int   // live readers forked from a path through this node
}

// Stats is a point-in-time summary of one tree.
type Stats struct {
	Nodes          int    `json:"nodes"`
	RetainedBlocks int    `json:"retained_blocks"`
	PinnedBlocks   int    `json:"pinned_blocks"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	HitTokens      uint64 `json:"hit_tokens"`
	Insertions     uint64 `json:"insertions"`
	Evictions      uint64 `json:"evictions"`
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// Tree is one lane's prefix index over its kvpool. All methods are safe
// for concurrent use. Lock order: Tree.mu is taken before any pool lock
// (RetainBlocks / ReleaseBlockIDs acquire the pool mutex internally).
type Tree struct {
	pool Pool

	mu    sync.Mutex
	root  *node
	index map[uint64]*node // key → node, for O(1) chain walks
	clock int64

	hits, misses uint64
	hitTokens    uint64
	insertions   uint64
	evictions    uint64
}

// Pool is the slice of kvpool.Pool the tree needs; *kvpool.Pool satisfies
// it, and tests may substitute counters.
type Pool interface {
	BlockSize() int
	RetainBlocks(ids []int)
	ReleaseBlockIDs(ids []int)
}

var _ Pool = (*kvpool.Pool)(nil)

// New builds an empty tree over the pool.
func New(p Pool) *Tree {
	return &Tree{
		pool:  p,
		root:  &node{children: map[uint64]*node{}},
		index: map[uint64]*node{},
	}
}

// Match is a successful lookup: the longest cached prefix for a key
// chain. The path's nodes are pinned until Release is called; Blocks are
// NOT yet referenced for the caller — adopt them into a sequence (which
// takes its own references) before releasing the match if the KV will be
// used.
type Match struct {
	t      *Tree
	tip    *node
	Blocks []int // pool block IDs, root→tip order
	Tokens int   // prefix tokens covered
}

// Lookup walks the key chain and returns the longest matched path, or
// nil on a complete miss. A non-nil match pins its path against eviction
// until Release.
func (t *Tree) Lookup(keys []uint64) *Match {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	cur := t.root
	var blocks []int
	for _, k := range keys {
		next := cur.children[k]
		if next == nil {
			break
		}
		next.lastUse = t.clock
		blocks = append(blocks, next.block)
		cur = next
	}
	if cur == t.root {
		t.misses++
		return nil
	}
	t.hits++
	tokens := cur.depth * t.pool.BlockSize()
	t.hitTokens += uint64(tokens)
	for n := cur; n != t.root; n = n.parent {
		n.pins++
	}
	return &Match{t: t, tip: cur, Blocks: blocks, Tokens: tokens}
}

// Release unpins the match's path. Idempotent.
func (m *Match) Release() {
	if m == nil || m.t == nil {
		return
	}
	t := m.t
	t.mu.Lock()
	for n := m.tip; n != t.root; n = n.parent {
		if n.pins <= 0 {
			panic("prefixcache: unbalanced match release")
		}
		n.pins--
	}
	t.mu.Unlock()
	m.t = nil
}

// Insert donates a finished prefill's blocks to the tree: keys[i] names
// the prefix through blocks[i]. Nodes already present are refreshed;
// new nodes retain their block in the pool. The donor keeps its own
// references — Insert never takes ownership of the caller's sequence.
// Returns how many new blocks the tree retained.
func (t *Tree) Insert(keys []uint64, blocks []int) int {
	n := len(keys)
	if len(blocks) < n {
		n = len(blocks)
	}
	if n == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	cur := t.root
	var fresh []int
	for i := 0; i < n; i++ {
		k := keys[i]
		next := cur.children[k]
		if next == nil {
			next = &node{
				key:      k,
				parent:   cur,
				children: map[uint64]*node{},
				block:    blocks[i],
				depth:    cur.depth + 1,
			}
			cur.children[k] = next
			t.index[k] = next
			fresh = append(fresh, blocks[i])
			t.insertions++
		}
		next.lastUse = t.clock
		cur = next
	}
	if len(fresh) > 0 {
		// Take the tree's references while still under t.mu so a
		// concurrent eviction cannot race the retain.
		t.pool.RetainBlocks(fresh)
	}
	return len(fresh)
}

// EvictLRU releases up to n blocks, oldest-leaf-first, skipping pinned
// paths. Because the tree only ever drops its own references, a block a
// live request adopted survives in the pool even after its node is
// evicted. Returns how many blocks were released.
func (t *Tree) EvictLRU(n int) int {
	if n <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var released []int
	for len(released) < n {
		leaf := t.oldestEvictableLeafLocked()
		if leaf == nil {
			break
		}
		released = append(released, leaf.block)
		delete(leaf.parent.children, leaf.key)
		delete(t.index, leaf.key)
		leaf.parent = nil
		t.evictions++
	}
	if len(released) > 0 {
		t.pool.ReleaseBlockIDs(released)
	}
	return len(released)
}

// oldestEvictableLeafLocked scans for the least-recently-used unpinned
// leaf. A pinned node (live reader somewhere on its path) is never a
// candidate, which upholds the "eviction never breaks an in-flight fork"
// contract twice over: pins protect the path while a match is held, and
// pool refcounts protect already-adopted blocks afterwards.
func (t *Tree) oldestEvictableLeafLocked() *node {
	var best *node
	var walk func(*node)
	walk = func(nd *node) {
		for _, c := range nd.children {
			if len(c.children) == 0 {
				if c.pins == 0 && (best == nil || c.lastUse < best.lastUse) {
					best = c
				}
				continue
			}
			walk(c)
		}
	}
	walk(t.root)
	return best
}

// Flush evicts every unpinned node, bottom-up. Pinned paths survive; the
// caller can re-flush once readers drain. Returns blocks released.
func (t *Tree) Flush() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var released []int
	var walk func(*node)
	walk = func(nd *node) {
		for k, c := range nd.children {
			walk(c)
			if len(c.children) == 0 && c.pins == 0 {
				released = append(released, c.block)
				delete(nd.children, k)
				delete(t.index, k)
				c.parent = nil
				t.evictions++
			}
		}
	}
	walk(t.root)
	if len(released) > 0 {
		t.pool.ReleaseBlockIDs(released)
	}
	return len(released)
}

// RetainedBlocks returns how many blocks the tree currently holds
// references on.
func (t *Tree) RetainedBlocks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.index)
}

// Stats returns a snapshot of tree size and hit/eviction counters.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	pinned := 0
	for _, nd := range t.index {
		if nd.pins > 0 {
			pinned++
		}
	}
	return Stats{
		Nodes:          len(t.index),
		RetainedBlocks: len(t.index),
		PinnedBlocks:   pinned,
		Hits:           t.hits,
		Misses:         t.misses,
		HitTokens:      t.hitTokens,
		Insertions:     t.insertions,
		Evictions:      t.evictions,
	}
}

// Keys returns the indexed keys in deterministic order (tests).
func (t *Tree) Keys() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, 0, len(t.index))
	for k := range t.index {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
