package prefixcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kvpool"
	"repro/internal/model"
	"repro/internal/tensor"
)

func newPool(t *testing.T, blocks int) *kvpool.Pool {
	t.Helper()
	cfg := model.Tiny(model.OPT)
	probe, err := kvpool.New(cfg, tensor.BF16, 16, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := kvpool.New(cfg, tensor.BF16, 16, probe.BytesPerBlock()*int64(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBlocks() != blocks {
		t.Fatalf("pool sized %d, want %d", p.TotalBlocks(), blocks)
	}
	return p
}

func seg(id string, tokens int) Segment { return Segment{ID: id, Tokens: tokens} }

func TestBlockKeysDeterministicAndDivergent(t *testing.T) {
	a := []Segment{seg("sys", 32), seg("u1", 20)}
	b := []Segment{seg("sys", 32), seg("u2", 20)}
	ka := BlockKeys(a, 16)
	kb := BlockKeys(b, 16)
	if len(ka) != 3 || len(kb) != 3 { // 52 tokens → 3 full blocks
		t.Fatalf("key counts %d/%d, want 3", len(ka), len(kb))
	}
	if k2 := BlockKeys(a, 16); len(k2) != 3 || k2[0] != ka[0] || k2[2] != ka[2] {
		t.Error("keys must be deterministic")
	}
	// Shared system prompt: first two blocks (32 tokens) agree, the
	// third (crossing into the divergent message) must differ.
	if ka[0] != kb[0] || ka[1] != kb[1] {
		t.Error("shared-prefix blocks must produce equal keys")
	}
	if ka[2] == kb[2] {
		t.Error("divergent content must produce a different key")
	}
	// Same bytes, different segmentation boundary → different keys: the
	// chain commits to segment identity, and "sys" vs "sy"+"s" are
	// different identities even if some tokenization made them equal.
	c := []Segment{seg("sy", 16), seg("s", 16), seg("u1", 20)}
	kc := BlockKeys(c, 16)
	if kc[0] == ka[0] {
		t.Error("different segmentation must not collide")
	}
}

func TestBlockKeysPrivateAndPartial(t *testing.T) {
	if got := BlockKeys([]Segment{seg("s", 15)}, 16); got != nil {
		t.Error("sub-block prefix must yield no keys")
	}
	if got := BlockKeys([]Segment{{ID: "p", Tokens: 64, Private: true}}, 16); got != nil {
		t.Error("private segment must yield no keys")
	}
	got := BlockKeys([]Segment{seg("s", 40), {ID: "p", Tokens: 64, Private: true}}, 16)
	if len(got) != 2 { // only the 2 full blocks before the private tail
		t.Errorf("keys before private tail: %d, want 2", len(got))
	}
	if BlockKeys(nil, 16) != nil || BlockKeys([]Segment{seg("s", 64)}, 0) != nil {
		t.Error("degenerate inputs must yield no keys")
	}
}

func TestInsertLookupEvict(t *testing.T) {
	p := newPool(t, 16)
	tree := New(p)

	donor := p.NewSequence()
	if err := donor.Append(64); err != nil { // 4 blocks
		t.Fatal(err)
	}
	keys := BlockKeys([]Segment{seg("sys", 64)}, 16)
	if n := tree.Insert(keys, donor.Blocks()); n != 4 {
		t.Fatalf("inserted %d, want 4", n)
	}
	if n := tree.Insert(keys, donor.Blocks()); n != 0 {
		t.Fatalf("re-insert retained %d, want 0", n)
	}
	if err := donor.Free(); err != nil {
		t.Fatal(err)
	}
	if free := p.FreeBlocks(); free != 12 {
		t.Fatalf("free=%d with tree retaining 4, want 12", free)
	}

	// Longest-prefix match across a divergent tail.
	probe := BlockKeys([]Segment{seg("sys", 64), seg("u", 32)}, 16)
	m := tree.Lookup(probe)
	if m == nil || m.Tokens != 64 || len(m.Blocks) != 4 {
		t.Fatalf("match %+v, want 4 blocks / 64 tokens", m)
	}
	// Pinned path must survive eviction pressure.
	if n := tree.EvictLRU(100); n != 0 {
		t.Fatalf("evicted %d pinned blocks", n)
	}
	adopted, err := p.AdoptPrefix(m.Blocks, m.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	m.Release()
	m.Release() // idempotent

	// Unpinned now: eviction drops the tree's references, but the
	// adopted fork keeps the blocks alive in the pool.
	if n := tree.EvictLRU(100); n != 4 {
		t.Fatalf("evicted %d, want 4", n)
	}
	if tree.RetainedBlocks() != 0 {
		t.Error("tree must be empty after eviction")
	}
	if err := adopted.Append(10); err != nil {
		t.Fatal(err)
	}
	if err := adopted.Free(); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 16 {
		t.Fatalf("free=%d at end, want 16 (leak)", p.FreeBlocks())
	}

	st := tree.Stats()
	if st.Hits != 1 || st.Evictions != 4 || st.Insertions != 4 {
		t.Errorf("stats %+v", st)
	}
	if tree.Lookup(BlockKeys([]Segment{seg("other", 32)}, 16)) != nil {
		t.Error("miss expected")
	}
	if hr := tree.Stats().HitRate(); hr != 0.5 {
		t.Errorf("hit rate %v, want 0.5", hr)
	}
}

func TestLRUOrderAndFlush(t *testing.T) {
	p := newPool(t, 16)
	tree := New(p)
	mk := func(name string) []uint64 {
		keys := BlockKeys([]Segment{seg(name, 16)}, 16)
		s := p.NewSequence()
		if err := s.Append(16); err != nil {
			t.Fatal(err)
		}
		tree.Insert(keys, s.Blocks())
		if err := s.Free(); err != nil {
			t.Fatal(err)
		}
		return keys
	}
	ka := mk("a")
	kb := mk("b")
	tree.Lookup(ka).Release() // refresh a; b is now LRU
	if tree.EvictLRU(1) != 1 {
		t.Fatal("evict")
	}
	if tree.Lookup(kb) != nil {
		t.Error("b should have been evicted (LRU)")
	}
	if m := tree.Lookup(ka); m == nil {
		t.Error("a should survive")
	} else {
		m.Release()
	}
	if n := tree.Flush(); n != tree.Stats().Nodes+n-tree.RetainedBlocks() && tree.RetainedBlocks() != 0 {
		t.Errorf("flush left %d retained", tree.RetainedBlocks())
	}
	if p.FreeBlocks() != 16 {
		t.Fatalf("free=%d after flush, want 16", p.FreeBlocks())
	}
}

// TestCacheAccountingProperty drives a random interleaving of
// insert / lookup(hit) / evict / fork(adopt) / free against one pool and
// checks, after every step, that block accounting stays exact and that
// no block with a live reader was ever recycled. This is the ISSUE's
// required testing/quick property.
func TestCacheAccountingProperty(t *testing.T) {
	const blocks = 24
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := 30 + int(opsRaw)%60
		p := newPool(t, blocks)
		tree := New(p)
		type fork struct {
			s      *kvpool.Sequence
			shared []int
		}
		var forks []*fork
		groups := []string{"g0", "g1", "g2"}
		inserted := map[string][]uint64{}

		check := func() bool {
			// Exactness: every block the tree retains must be live.
			for _, f := range forks {
				for _, id := range f.shared {
					if p.BlockRef(id) < 1 {
						t.Logf("seed=%d: adopted block %d recycled under reader", seed, id)
						return false
					}
				}
			}
			return true
		}

		for i := 0; i < ops; i++ {
			switch rng.Intn(5) {
			case 0: // insert: prefill a group prompt and donate it
				g := groups[rng.Intn(len(groups))]
				ntok := (1 + rng.Intn(3)) * 16
				keys := BlockKeys([]Segment{seg(g, ntok)}, 16)
				s := p.NewSequence()
				if err := s.Append(ntok); err != nil {
					tree.EvictLRU(2) // pressure: make room and move on
					_ = s.Free()
					continue
				}
				tree.Insert(keys, s.Blocks()[:len(keys)])
				if err := s.Free(); err != nil {
					return false
				}
				inserted[g] = keys
			case 1: // hit + adopt (fork from cache)
				g := groups[rng.Intn(len(groups))]
				keys := inserted[g]
				if keys == nil {
					continue
				}
				m := tree.Lookup(keys)
				if m == nil {
					continue
				}
				s, err := p.AdoptPrefix(m.Blocks, m.Tokens)
				if err != nil {
					m.Release()
					return false
				}
				shared := append([]int(nil), m.Blocks...)
				m.Release()
				forks = append(forks, &fork{s: s, shared: shared})
			case 2: // evict under pressure
				tree.EvictLRU(1 + rng.Intn(4))
			case 3: // a fork decodes a little (fresh blocks)
				if len(forks) > 0 {
					f := forks[rng.Intn(len(forks))]
					_ = f.s.Append(1 + rng.Intn(8)) // exhaustion is fine
				}
			case 4: // a fork terminates (incl. preempt-before-decode)
				if len(forks) > 0 {
					i := rng.Intn(len(forks))
					f := forks[i]
					if err := f.s.Free(); err != nil {
						return false
					}
					forks = append(forks[:i], forks[i+1:]...)
				}
			}
			if !check() {
				return false
			}
			st := p.Stats()
			if st.FreeBlocks < 0 || st.FreeBlocks > blocks {
				return false
			}
		}
		// Drain: free every fork, flush the tree; the pool must be
		// exactly full again — accounting stayed exact.
		for _, f := range forks {
			if err := f.s.Free(); err != nil {
				return false
			}
		}
		tree.Flush()
		if p.FreeBlocks() != blocks {
			t.Logf("seed=%d: %d free at drain, want %d", seed, p.FreeBlocks(), blocks)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
