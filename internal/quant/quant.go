// Package quant implements group-wise weight-only quantization for CPU
// LLM inference — the technique of the paper's related work ("Efficient
// LLM inference on CPUs", arXiv:2311.00502): weights are stored in 4 or 8
// bits with one FP scale per small group, and dequantized on the fly
// inside the GEMV inner loop. Halving or quartering weight bytes directly
// attacks the memory-bound decode phase the paper characterizes.
package quant

import "fmt"

// GroupedInt4 stores n values in 4-bit precision, two per byte, with one
// float32 scale per GroupSize values (symmetric, range [-7, 7]).
type GroupedInt4 struct {
	N         int
	GroupSize int
	Data      []byte // ceil(n/2) packed nibbles, low nibble first
	Scales    []float32
}

// QuantizeInt4 quantizes w with the given group size (must divide into
// complete trailing groups; the last group may be short).
func QuantizeInt4(w []float32, groupSize int) (GroupedInt4, error) {
	if groupSize <= 0 {
		return GroupedInt4{}, fmt.Errorf("quant: non-positive group size %d", groupSize)
	}
	g := GroupedInt4{
		N:         len(w),
		GroupSize: groupSize,
		Data:      make([]byte, (len(w)+1)/2),
		Scales:    make([]float32, (len(w)+groupSize-1)/groupSize),
	}
	for gi := range g.Scales {
		lo := gi * groupSize
		hi := min(lo+groupSize, len(w))
		var maxAbs float32
		for _, v := range w[lo:hi] {
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(1)
		if maxAbs > 0 {
			scale = maxAbs / 7
		}
		g.Scales[gi] = scale
		inv := 1 / scale
		for i := lo; i < hi; i++ {
			q := int8(round32(w[i] * inv))
			if q > 7 {
				q = 7
			} else if q < -7 {
				q = -7
			}
			nib := byte(q+8) & 0xF // biased representation
			if i%2 == 0 {
				g.Data[i/2] |= nib
			} else {
				g.Data[i/2] |= nib << 4
			}
		}
	}
	return g, nil
}

// At dequantizes element i.
func (g GroupedInt4) At(i int) float32 {
	b := g.Data[i/2]
	var nib byte
	if i%2 == 0 {
		nib = b & 0xF
	} else {
		nib = b >> 4
	}
	return float32(int8(nib)-8) * g.Scales[i/g.GroupSize]
}

// Dequantize expands all values.
func (g GroupedInt4) Dequantize() []float32 {
	out := make([]float32, g.N)
	for i := range out {
		out[i] = g.At(i)
	}
	return out
}

// Bytes returns the stored footprint including scales.
func (g GroupedInt4) Bytes() int64 {
	return int64(len(g.Data)) + int64(len(g.Scales))*4
}

// GroupedInt8 stores n values in 8 bits with per-group scales (symmetric,
// range [-127, 127]) — finer-grained than the per-tensor scheme in
// package tensor.
type GroupedInt8 struct {
	N         int
	GroupSize int
	Data      []int8
	Scales    []float32
}

// QuantizeInt8 quantizes w group-wise to int8.
func QuantizeInt8(w []float32, groupSize int) (GroupedInt8, error) {
	if groupSize <= 0 {
		return GroupedInt8{}, fmt.Errorf("quant: non-positive group size %d", groupSize)
	}
	g := GroupedInt8{
		N: len(w), GroupSize: groupSize,
		Data:   make([]int8, len(w)),
		Scales: make([]float32, (len(w)+groupSize-1)/groupSize),
	}
	for gi := range g.Scales {
		lo := gi * groupSize
		hi := min(lo+groupSize, len(w))
		var maxAbs float32
		for _, v := range w[lo:hi] {
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(1)
		if maxAbs > 0 {
			scale = maxAbs / 127
		}
		g.Scales[gi] = scale
		inv := 1 / scale
		for i := lo; i < hi; i++ {
			q := round32(w[i] * inv)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			g.Data[i] = int8(q)
		}
	}
	return g, nil
}

// At dequantizes element i.
func (g GroupedInt8) At(i int) float32 {
	return float32(g.Data[i]) * g.Scales[i/g.GroupSize]
}

// Dequantize expands all values.
func (g GroupedInt8) Dequantize() []float32 {
	out := make([]float32, g.N)
	for i := range out {
		out[i] = g.At(i)
	}
	return out
}

// Bytes returns the stored footprint including scales.
func (g GroupedInt8) Bytes() int64 {
	return int64(len(g.Data)) + int64(len(g.Scales))*4
}

// GemvInt4 computes y = A·x where A is m×k stored row-major in a. This is
// the weight-only-quantized decode kernel: weights dequantize on the fly
// in the inner loop, activations stay FP32.
func GemvInt4(m, k int, a GroupedInt4, x, y []float32) error {
	if a.N != m*k {
		return fmt.Errorf("quant: matrix has %d values, need %d", a.N, m*k)
	}
	if len(x) < k || len(y) < m {
		return fmt.Errorf("quant: vector sizes %d/%d too small", len(x), len(y))
	}
	for i := 0; i < m; i++ {
		var sum float32
		row := i * k
		for p := 0; p < k; p++ {
			sum += a.At(row+p) * x[p]
		}
		y[i] = sum
	}
	return nil
}

// GemvInt8 is the int8 counterpart of GemvInt4.
func GemvInt8(m, k int, a GroupedInt8, x, y []float32) error {
	if a.N != m*k {
		return fmt.Errorf("quant: matrix has %d values, need %d", a.N, m*k)
	}
	if len(x) < k || len(y) < m {
		return fmt.Errorf("quant: vector sizes %d/%d too small", len(x), len(y))
	}
	for i := 0; i < m; i++ {
		var sum float32
		row := i * k
		for p := 0; p < k; p++ {
			sum += a.At(row+p) * x[p]
		}
		y[i] = sum
	}
	return nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func round32(v float32) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return int32(v - 0.5)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
