package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVals(r *rand.Rand, n int) []float32 {
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(r.NormFloat64())
	}
	return w
}

func TestInt4RoundTripErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := randVals(r, 257) // odd length exercises the half-byte tail
	g, err := QuantizeInt4(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	back := g.Dequantize()
	for gi := range g.Scales {
		lo, hi := gi*32, min((gi+1)*32, len(w))
		for i := lo; i < hi; i++ {
			// Error within half a quantization step of the group scale.
			if math.Abs(float64(back[i]-w[i])) > float64(g.Scales[gi])*0.5+1e-6 {
				t.Fatalf("idx %d: %v -> %v (scale %v)", i, w[i], back[i], g.Scales[gi])
			}
		}
	}
}

func TestInt8RoundTripErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	w := randVals(r, 130)
	g, err := QuantizeInt8(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	back := g.Dequantize()
	for i := range w {
		scale := g.Scales[i/32]
		if math.Abs(float64(back[i]-w[i])) > float64(scale)*0.5+1e-6 {
			t.Fatalf("idx %d: %v -> %v", i, w[i], back[i])
		}
	}
}

func TestInt4FootprintQuartersBF16(t *testing.T) {
	const n = 4096
	g, _ := QuantizeInt4(make([]float32, n), 128)
	bf16Bytes := int64(n * 2)
	if g.Bytes() >= bf16Bytes/3 {
		t.Errorf("int4 footprint %d should be ≲1/4 of bf16 %d", g.Bytes(), bf16Bytes)
	}
	g8, _ := QuantizeInt8(make([]float32, n), 128)
	if g8.Bytes() >= bf16Bytes {
		t.Errorf("int8 footprint %d should be below bf16 %d", g8.Bytes(), bf16Bytes)
	}
}

func TestSmallerGroupsSmallerError(t *testing.T) {
	// Group-wise scales adapt to local magnitude: with a mixed-magnitude
	// weight vector, small groups must have lower RMS error.
	r := rand.New(rand.NewSource(3))
	w := make([]float32, 1024)
	for i := range w {
		scale := 0.01
		if i%2 == 0 {
			scale = 10 // interleave large and small magnitudes
		}
		w[i] = float32(r.NormFloat64() * scale)
	}
	rms := func(groupSize int) float64 {
		g, err := QuantizeInt4(w, groupSize)
		if err != nil {
			t.Fatal(err)
		}
		back := g.Dequantize()
		var ss float64
		for i := range w {
			d := float64(back[i] - w[i])
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(w)))
	}
	// Group size 1024 (one scale) vs 2 (pairs of large+small — still bad)
	// vs alternating-aware small groups don't help here because big and
	// small interleave; compare one-scale vs per-32 on a blocked layout
	// instead.
	for i := range w {
		scale := 0.01
		if i >= 512 {
			scale = 10
		}
		w[i] = float32(r.NormFloat64() * scale)
	}
	if rms(32) >= rms(1024) {
		t.Errorf("per-32 RMS %g should beat per-1024 RMS %g", rms(32), rms(1024))
	}
}

func TestGemvInt4MatchesDequantizedReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m, k := 17, 40
	w := randVals(r, m*k)
	x := randVals(r, k)
	g, err := QuantizeInt4(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	deq := g.Dequantize()
	want := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float32
		for p := 0; p < k; p++ {
			s += deq[i*k+p] * x[p]
		}
		want[i] = s
	}
	got := make([]float32, m)
	if err := GemvInt4(m, k, g, x, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestGemvInt8MatchesDequantizedReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m, k := 9, 24
	w := randVals(r, m*k)
	x := randVals(r, k)
	g, err := QuantizeInt8(w, 6)
	if err != nil {
		t.Fatal(err)
	}
	deq := g.Dequantize()
	got := make([]float32, m)
	if err := GemvInt8(m, k, g, x, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		var want float32
		for p := 0; p < k; p++ {
			want += deq[i*k+p] * x[p]
		}
		if math.Abs(float64(got[i]-want)) > 1e-4 {
			t.Fatalf("row %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := QuantizeInt4(nil, 0); err == nil {
		t.Error("zero group size must fail")
	}
	if _, err := QuantizeInt8(nil, -1); err == nil {
		t.Error("negative group size must fail")
	}
	g, _ := QuantizeInt4(make([]float32, 4), 2)
	if err := GemvInt4(2, 3, g, make([]float32, 3), make([]float32, 2)); err == nil {
		t.Error("size mismatch must fail")
	}
	if err := GemvInt4(2, 2, g, make([]float32, 1), make([]float32, 2)); err == nil {
		t.Error("short x must fail")
	}
	g8, _ := QuantizeInt8(make([]float32, 4), 2)
	if err := GemvInt8(3, 2, g8, make([]float32, 2), make([]float32, 3)); err == nil {
		t.Error("int8 size mismatch must fail")
	}
	if err := GemvInt8(2, 2, g8, make([]float32, 2), make([]float32, 1)); err == nil {
		t.Error("short y must fail")
	}
}

func TestZeroGroup(t *testing.T) {
	g, err := QuantizeInt4(make([]float32, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Dequantize() {
		if v != 0 {
			t.Fatal("zero weights must dequantize to zero")
		}
	}
}

func TestInt4Property(t *testing.T) {
	// Property: every dequantized value is within half a step, for
	// arbitrary inputs and group sizes.
	f := func(vals []float32, gsRaw uint8) bool {
		for _, v := range vals {
			if v != v || v > 1e30 || v < -1e30 {
				return true
			}
		}
		gs := int(gsRaw%64) + 1
		g, err := QuantizeInt4(vals, gs)
		if err != nil {
			return false
		}
		for i, v := range vals {
			step := g.Scales[i/gs]
			if math.Abs(float64(g.At(i)-v)) > float64(step)*0.5000001+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
