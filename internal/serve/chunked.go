package serve

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Sarathi-style chunked-prefill scheduling (the paper's related work [2],
// [3]): plain continuous batching runs an arriving request's whole prefill
// as one iteration, stalling every in-flight decode for the full prompt
// duration — the TTFT/TPOT interference Sarathi-Serve measures. The
// chunked policy splits each prefill into PrefillChunk-token pieces and
// coalesces one piece with the decode batch per iteration, bounding any
// single iteration (and therefore every in-flight request's inter-token
// stall) by roughly a chunk's worth of compute.

// ChunkedServer runs continuous batching with chunked prefill.
type ChunkedServer struct {
	Cost     CostModel
	MaxBatch int
	// PrefillChunk is the number of prompt tokens processed per iteration
	// for an admitting request.
	PrefillChunk int

	// MaxIterationSeconds records the longest single iteration of the
	// last Run — the worst inter-token stall in-flight decodes observed.
	MaxIterationSeconds float64
}

// prefilling tracks one request whose prompt is being processed in chunks.
type prefilling struct {
	req      workload.Request
	done     int
	startAbs float64
}

// Run serves the trace (sorted by arrival) and returns completions in
// request-ID order.
func (s *ChunkedServer) Run(trace []workload.Request) ([]Completion, error) {
	if s.Cost == nil {
		return nil, fmt.Errorf("serve: nil cost model")
	}
	if s.MaxBatch < 1 {
		s.MaxBatch = 1
	}
	if s.PrefillChunk < 1 {
		return nil, fmt.Errorf("serve: chunked policy needs a positive PrefillChunk")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].ArrivalSeconds < trace[i-1].ArrivalSeconds {
			return nil, fmt.Errorf("serve: trace not sorted by arrival at index %d", i)
		}
	}
	s.MaxIterationSeconds = 0

	var clock float64
	var running []inflight
	var pre *prefilling
	next := 0
	base := Server{Cost: s.Cost}
	out := make([]Completion, 0, len(trace))

	for len(out) < len(trace) {
		// Admit one request into the prefill slot when free.
		if pre == nil && len(running) < s.MaxBatch &&
			next < len(trace) && trace[next].ArrivalSeconds <= clock {
			pre = &prefilling{req: trace[next], startAbs: clock}
			next++
		}
		if pre == nil && len(running) == 0 {
			if next >= len(trace) {
				break
			}
			if trace[next].ArrivalSeconds > clock {
				clock = trace[next].ArrivalSeconds
			}
			continue
		}

		// One iteration: a decode step for the running batch coalesced
		// with one prefill chunk.
		var iter float64
		if len(running) > 0 {
			maxCtx := 0
			for _, fl := range running {
				if fl.ctx > maxCtx {
					maxCtx = fl.ctx
				}
			}
			d, err := s.Cost.DecodeStepCost(len(running), maxCtx)
			if err != nil {
				return nil, err
			}
			iter += d
		}
		if pre != nil {
			chunk := s.PrefillChunk
			if rem := pre.req.InputLen - pre.done; chunk > rem {
				chunk = rem
			}
			c, err := s.Cost.PrefillCost(1, chunk)
			if err != nil {
				return nil, err
			}
			iter += c
			pre.done += chunk
		}
		clock += iter
		if iter > s.MaxIterationSeconds {
			s.MaxIterationSeconds = iter
		}

		// Advance decodes.
		kept := running[:0]
		for _, fl := range running {
			fl.ctx++
			fl.remaining--
			if fl.remaining == 0 {
				out = append(out, base.complete(fl, clock))
				continue
			}
			kept = append(kept, fl)
		}
		running = kept

		// Promote a finished prefill: its first token exists now.
		if pre != nil && pre.done >= pre.req.InputLen {
			fl := inflight{req: pre.req, ctx: pre.req.InputLen,
				remaining: pre.req.OutputLen - 1,
				ttftAbs:   clock, startAbs: pre.startAbs}
			if fl.remaining == 0 {
				out = append(out, base.complete(fl, clock))
			} else {
				running = append(running, fl)
			}
			pre = nil
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Request.ID < out[b].Request.ID })
	return out, nil
}
