package serve

import (
	"testing"

	"repro/internal/workload"
)

// chunkTrace: steady short decodes plus one long-prompt arrival mid-way —
// the interference scenario Sarathi targets.
func chunkTrace() []workload.Request {
	var tr []workload.Request
	for i := 0; i < 8; i++ {
		tr = append(tr, workload.Request{ID: i, InputLen: 32, OutputLen: 24,
			ArrivalSeconds: float64(i) * 0.01})
	}
	tr = append(tr, workload.Request{ID: 8, InputLen: 2048, OutputLen: 8,
		ArrivalSeconds: 0.2})
	return tr
}

func TestChunkedServesEverything(t *testing.T) {
	s := ChunkedServer{Cost: fixedCost{0.001, 0.02}, MaxBatch: 8, PrefillChunk: 128}
	cs, err := s.Run(chunkTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 9 {
		t.Fatalf("served %d of 9", len(cs))
	}
	for _, c := range cs {
		if c.E2E < 0 || c.TTFT <= 0 || c.Finish < c.Request.ArrivalSeconds {
			t.Fatalf("inconsistent completion %+v", c)
		}
	}
}

// TestChunkedBoundsStalls is the Sarathi claim: with chunked prefill, no
// iteration (= no in-flight decode's inter-token stall) approaches the
// monolithic prefill time of the long prompt.
func TestChunkedBoundsStalls(t *testing.T) {
	cost := fixedCost{0.001, 0.02}
	s := ChunkedServer{Cost: cost, MaxBatch: 8, PrefillChunk: 128}
	if _, err := s.Run(chunkTrace()); err != nil {
		t.Fatal(err)
	}
	monolithic, err := cost.PrefillCost(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxIterationSeconds > monolithic/4 {
		t.Errorf("worst chunked iteration %.3fs not well below monolithic prefill %.3fs",
			s.MaxIterationSeconds, monolithic)
	}
	// Smaller chunks bound stalls tighter.
	s2 := ChunkedServer{Cost: cost, MaxBatch: 8, PrefillChunk: 32}
	if _, err := s2.Run(chunkTrace()); err != nil {
		t.Fatal(err)
	}
	if s2.MaxIterationSeconds > s.MaxIterationSeconds {
		t.Errorf("chunk 32 stall %.3fs above chunk 128 stall %.3fs",
			s2.MaxIterationSeconds, s.MaxIterationSeconds)
	}
}

// TestChunkedThroughputComparable: bounding stalls must not wreck
// throughput relative to plain continuous batching.
func TestChunkedThroughputComparable(t *testing.T) {
	cost := fixedCost{0.001, 0.02}
	tr := chunkTrace()
	plain := Server{Cost: cost, Policy: Continuous, MaxBatch: 8}
	pc, err := plain.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	chunked := ChunkedServer{Cost: cost, MaxBatch: 8, PrefillChunk: 128}
	cc, err := chunked.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, c := Summarize(pc), Summarize(cc)
	if c.TokensPerSecond < p.TokensPerSecond*0.6 {
		t.Errorf("chunked throughput %.1f fell far below continuous %.1f",
			c.TokensPerSecond, p.TokensPerSecond)
	}
}

func TestChunkedValidation(t *testing.T) {
	s := ChunkedServer{MaxBatch: 4, PrefillChunk: 16}
	if _, err := s.Run(nil); err == nil {
		t.Error("nil cost must fail")
	}
	s = ChunkedServer{Cost: fixedCost{0.001, 0.02}, MaxBatch: 4}
	if _, err := s.Run(nil); err == nil {
		t.Error("zero chunk must fail")
	}
	s = ChunkedServer{Cost: fixedCost{0.001, 0.02}, MaxBatch: 4, PrefillChunk: 16}
	bad := []workload.Request{
		{ID: 0, InputLen: 4, OutputLen: 4, ArrivalSeconds: 2},
		{ID: 1, InputLen: 4, OutputLen: 4, ArrivalSeconds: 1},
	}
	if _, err := s.Run(bad); err == nil {
		t.Error("unsorted trace must fail")
	}
	// Single-token outputs complete at prefill.
	one := []workload.Request{{ID: 0, InputLen: 40, OutputLen: 1}}
	cs, err := s.Run(one)
	if err != nil || len(cs) != 1 {
		t.Fatalf("single-token run: %v", err)
	}
}
