package serve

import (
	"sync"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// ctxBucket quantizes context lengths so the iteration-level simulator's
// memoized cost table stays small; decode cost varies slowly with context.
const ctxBucket = 32

type costKey struct {
	prefill bool
	batch   int
	length  int
}

// memoCost wraps a raw pricing function with a concurrency-safe memo.
type memoCost struct {
	mu    sync.Mutex
	memo  map[costKey]float64
	price func(prefill bool, batch, length int) (float64, error)
}

func (m *memoCost) get(prefill bool, batch, length int) (float64, error) {
	if !prefill {
		length = (length + ctxBucket - 1) / ctxBucket * ctxBucket
	}
	k := costKey{prefill, batch, length}
	m.mu.Lock()
	if v, ok := m.memo[k]; ok {
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()
	v, err := m.price(prefill, batch, length)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.memo[k] = v
	m.mu.Unlock()
	return v, nil
}

func (m *memoCost) PrefillCost(batch, inputLen int) (float64, error) {
	return m.get(true, batch, inputLen)
}

func (m *memoCost) DecodeStepCost(batch, ctxLen int) (float64, error) {
	return m.get(false, batch, ctxLen)
}

// NewCPUCost prices server iterations on a modeled CPU configuration.
func NewCPUCost(setup memsim.Config, m model.Config) CostModel {
	return &memoCost{
		memo: map[costKey]float64{},
		price: func(prefill bool, batch, length int) (float64, error) {
			if prefill {
				res, err := perfmodel.CPURun{Model: m, Setup: setup, Batch: batch,
					InputLen: length, OutputLen: 1, Weights: tensor.BF16}.Simulate()
				return res.PrefillSeconds, err
			}
			res, err := perfmodel.CPURun{Model: m, Setup: setup, Batch: batch,
				InputLen: length, OutputLen: 2, Weights: tensor.BF16}.Simulate()
			return res.DecodeSeconds, err
		},
	}
}

// NewGPUCost prices server iterations on a modeled GPU, engaging the
// offloading executor when the model does not fit.
func NewGPUCost(g hw.GPU, m model.Config) CostModel {
	return &memoCost{
		memo: map[costKey]float64{},
		price: func(prefill bool, batch, length int) (float64, error) {
			outLen := 2
			if prefill {
				outLen = 1
			}
			resident := perfmodel.GPURun{GPU: g, Model: m, Batch: batch,
				InputLen: length, OutputLen: outLen, Weights: tensor.BF16}
			if resident.Fits() {
				res, err := resident.Simulate()
				if prefill {
					return res.PrefillSeconds, err
				}
				return res.DecodeSeconds, err
			}
			res, err := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: batch, InputLen: length, OutputLen: outLen,
				Weights: tensor.BF16}.Simulate()
			if prefill {
				return res.PrefillSeconds, err
			}
			return res.DecodeSeconds, err
		},
	}
}
