package serve

import (
	"sync"

	"repro/internal/counters"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// ctxBucket quantizes context lengths so the iteration-level simulator's
// memoized cost table stays small; decode cost varies slowly with context.
const ctxBucket = 32

type costKey struct {
	prefill bool
	batch   int
	length  int
}

// priced is one memoized pricing result: the phase seconds plus, when the
// underlying model emulates hardware counters, the phase's counter report.
type priced struct {
	seconds     float64
	counters    counters.Report
	hasCounters bool
}

// memoCost wraps a raw pricing function with a concurrency-safe memo.
type memoCost struct {
	mu    sync.Mutex
	memo  map[costKey]priced
	price func(prefill bool, batch, length int) (priced, error)
}

func (m *memoCost) get(prefill bool, batch, length int) (priced, error) {
	if !prefill {
		length = (length + ctxBucket - 1) / ctxBucket * ctxBucket
	}
	k := costKey{prefill, batch, length}
	m.mu.Lock()
	if v, ok := m.memo[k]; ok {
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()
	v, err := m.price(prefill, batch, length)
	if err != nil {
		return priced{}, err
	}
	m.mu.Lock()
	m.memo[k] = v
	m.mu.Unlock()
	return v, nil
}

func (m *memoCost) PrefillCost(batch, inputLen int) (float64, error) {
	v, err := m.get(true, batch, inputLen)
	return v.seconds, err
}

func (m *memoCost) DecodeStepCost(batch, ctxLen int) (float64, error) {
	v, err := m.get(false, batch, ctxLen)
	return v.seconds, err
}

// PhaseCounters implements CounterModel. The lookup shares the pricing
// memo, so attaching counters to an already-priced span costs a map hit.
func (m *memoCost) PhaseCounters(prefill bool, batch, length int) (counters.Report, bool) {
	v, err := m.get(prefill, batch, length)
	if err != nil || !v.hasCounters {
		return counters.Report{}, false
	}
	return v.counters, true
}

// NewCPUCost prices server iterations on a modeled CPU configuration. The
// returned model also implements CounterModel: every priced phase carries
// the emulated counter report of the platform that priced it.
func NewCPUCost(setup memsim.Config, m model.Config) CostModel {
	return &memoCost{
		memo: map[costKey]priced{},
		price: func(prefill bool, batch, length int) (priced, error) {
			run := perfmodel.CPURun{Model: m, Setup: setup, Batch: batch,
				InputLen: length, OutputLen: 2, Weights: tensor.BF16}
			if prefill {
				run.OutputLen = 1
			}
			res, err := run.Simulate()
			if err != nil {
				return priced{}, err
			}
			seconds := res.PrefillSeconds
			if !prefill {
				seconds = res.DecodeSeconds
			}
			rep, err := run.PhaseCounters(prefill)
			if err != nil {
				return priced{}, err
			}
			return priced{seconds: seconds, counters: rep, hasCounters: true}, nil
		},
	}
}

// NewGPUCost prices server iterations on a modeled GPU, engaging the
// offloading executor when the model does not fit. GPU lanes report no
// CPU counter analogs.
func NewGPUCost(g hw.GPU, m model.Config) CostModel {
	return &memoCost{
		memo: map[costKey]priced{},
		price: func(prefill bool, batch, length int) (priced, error) {
			outLen := 2
			if prefill {
				outLen = 1
			}
			resident := perfmodel.GPURun{GPU: g, Model: m, Batch: batch,
				InputLen: length, OutputLen: outLen, Weights: tensor.BF16}
			if resident.Fits() {
				res, err := resident.Simulate()
				if prefill {
					return priced{seconds: res.PrefillSeconds}, err
				}
				return priced{seconds: res.DecodeSeconds}, err
			}
			res, err := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: batch, InputLen: length, OutputLen: outLen,
				Weights: tensor.BF16}.Simulate()
			if prefill {
				return priced{seconds: res.PrefillSeconds}, err
			}
			return priced{seconds: res.DecodeSeconds}, err
		},
	}
}
