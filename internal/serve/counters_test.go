package serve

// counters_test.go covers the CounterModel side of the cost adapters: CPU
// lanes attach per-phase emulated counter reports (sharing the pricing
// memo), GPU and fallback lanes report none.

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
)

func TestCPUCostPhaseCounters(t *testing.T) {
	cpu := NewCPUCost(memsim.Config{CPU: hw.SPRMax9468, Cores: 48,
		Mem: memsim.Flat, Cluster: memsim.Quad}, model.Llama13B)
	cm, ok := cpu.(CounterModel)
	if !ok {
		t.Fatal("CPU cost model does not implement CounterModel")
	}

	pre, ok := cm.PhaseCounters(true, 4, 128)
	if !ok {
		t.Fatal("no prefill counters")
	}
	dec, ok := cm.PhaseCounters(false, 4, 128)
	if !ok {
		t.Fatal("no decode counters")
	}
	for _, c := range []struct {
		name string
		rep  float64
	}{
		{"prefill LLC MPKI", pre.LLCMPKI},
		{"decode LLC MPKI", dec.LLCMPKI},
		{"prefill core util", pre.CoreUtilization},
		{"decode core util", dec.CoreUtilization},
	} {
		if c.rep <= 0 {
			t.Errorf("%s = %g, want > 0", c.name, c.rep)
		}
	}
	// The paper's central contrast: decode is the memory-bound phase, so
	// its per-phase report must be more memory-bound than prefill's.
	if dec.MemoryBoundFraction <= pre.MemoryBoundFraction {
		t.Errorf("decode memory-bound %.3f <= prefill %.3f; phase attribution washed out",
			dec.MemoryBoundFraction, pre.MemoryBoundFraction)
	}
	for _, rep := range []struct {
		name string
		mbf  float64
		cu   float64
	}{{"prefill", pre.MemoryBoundFraction, pre.CoreUtilization},
		{"decode", dec.MemoryBoundFraction, dec.CoreUtilization}} {
		if rep.mbf < 0 || rep.mbf > 1 {
			t.Errorf("%s memory-bound fraction %g outside [0,1]", rep.name, rep.mbf)
		}
		if diff := rep.mbf + rep.cu - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: memory-bound %.6f + core-util %.6f != 1", rep.name, rep.mbf, rep.cu)
		}
	}

	// Counter lookup shares the pricing memo: same shape, same report.
	again, _ := cm.PhaseCounters(false, 4, 128)
	if again != dec {
		t.Error("memoized counter report differs between calls")
	}
}

func TestGPUAndFallbackCostsReportNoCounters(t *testing.T) {
	for name, cost := range map[string]CostModel{
		"gpu":      NewGPUCost(hw.H100, model.OPT13B),
		"fallback": NewAnalyticFallback(model.Tiny(model.OPT), 0),
	} {
		cm, ok := cost.(CounterModel)
		if !ok {
			// Not implementing the interface at all is also a valid way
			// to report no counters.
			continue
		}
		if _, has := cm.PhaseCounters(true, 1, 64); has {
			t.Errorf("%s cost model claims CPU counter analogs", name)
		}
	}
}
