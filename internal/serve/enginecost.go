package serve

// enginecost.go prices scheduler iterations by actually executing the
// functional engine and timing it, instead of consulting the analytic
// platform model. This lets the serving policies (continuous, chunked) and
// the gateway run against a real transformer at laptop scale: every
// prefill and decode-step cost is a measured wall-clock duration of real
// GEMMs, attention and sampling. Costs are memoized like the analytic
// models, so a long trace pays for each distinct (batch, length) shape
// once.

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/engine"
)

// engineCost implements CostModel by timing the real engine.
type engineCost struct {
	mu   sync.Mutex // engine sessions are cheap but the engine is shared
	e    *engine.Engine
	rng  *rand.Rand
	memo memoCost
}

// NewEngineCost returns a CostModel backed by measured execution of the
// given functional engine (typically a core.TinyEngine). Context lengths
// beyond the engine's MaxSeq are clamped, so arbitrarily long simulated
// requests still price monotonically.
func NewEngineCost(e *engine.Engine) CostModel {
	c := &engineCost{e: e, rng: rand.New(rand.NewSource(1))}
	c.memo = memoCost{memo: map[costKey]priced{}, price: func(prefill bool, batch, length int) (priced, error) {
		s, err := c.price(prefill, batch, length)
		return priced{seconds: s}, err
	}}
	return c
}

func (c *engineCost) PrefillCost(batch, inputLen int) (float64, error) {
	return c.memo.PrefillCost(batch, inputLen)
}

func (c *engineCost) DecodeStepCost(batch, ctxLen int) (float64, error) {
	return c.memo.DecodeStepCost(batch, ctxLen)
}

// price runs the measured workload. For prefill it times Prefill over a
// batch of sampled prompts; for decode it first rebuilds ctx tokens of KV
// state, then times exactly one DecodeStep.
func (c *engineCost) price(prefill bool, batch, length int) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.e.Config()
	maxCtx := cfg.MaxSeq - 1
	if length > maxCtx {
		length = maxCtx
	}
	if length < 1 {
		length = 1
	}
	if batch < 1 {
		batch = 1
	}

	prompts := make([][]int, batch)
	for b := range prompts {
		p := make([]int, length)
		for i := range p {
			p[i] = c.rng.Intn(cfg.Vocab)
		}
		prompts[b] = p
	}
	s := c.e.NewSession(batch, length+1)
	if prefill {
		start := time.Now()
		_, err := c.e.Prefill(s, prompts)
		return time.Since(start).Seconds(), err
	}
	toks, err := c.e.Prefill(s, prompts)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	_, err = c.e.DecodeStep(s, toks)
	return time.Since(start).Seconds(), err
}
