package serve

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func tinyEngine(t *testing.T) *engine.Engine {
	t.Helper()
	w, err := engine.NewWeights(model.Tiny(model.OPT), 42, tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(w, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineCostPricesPositive(t *testing.T) {
	cost := NewEngineCost(tinyEngine(t))
	pre, err := cost.PrefillCost(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pre <= 0 {
		t.Errorf("prefill cost %g, want > 0", pre)
	}
	dec, err := cost.DecodeStepCost(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dec <= 0 {
		t.Errorf("decode cost %g, want > 0", dec)
	}
	// Memoized: same shape must return the identical cached price.
	pre2, err := cost.PrefillCost(2, 16)
	if err != nil || pre2 != pre {
		t.Errorf("memoization broken: %g vs %g (%v)", pre2, pre, err)
	}
}

func TestEngineCostClampsLongContexts(t *testing.T) {
	cost := NewEngineCost(tinyEngine(t))
	// Far beyond tiny MaxSeq (64): must clamp, not error.
	if _, err := cost.PrefillCost(1, 4096); err != nil {
		t.Fatalf("long prefill: %v", err)
	}
	if _, err := cost.DecodeStepCost(1, 4096); err != nil {
		t.Fatalf("long decode: %v", err)
	}
}

func TestServerRunsOnEngineCost(t *testing.T) {
	cost := NewEngineCost(tinyEngine(t))
	gen := workload.NewGenerator(7)
	gen.MeanInputLen, gen.MeanOutputLen = 12, 4
	gen.ArrivalRate = 100
	trace := gen.Trace(6)

	srv := Server{Cost: cost, Policy: Continuous, MaxBatch: 4}
	cs, err := srv.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(trace) {
		t.Fatalf("completions %d, want %d", len(cs), len(trace))
	}
	for _, c := range cs {
		if c.TTFT <= 0 || c.E2E < c.TTFT {
			t.Errorf("request %d: TTFT %g E2E %g", c.Request.ID, c.TTFT, c.E2E)
		}
	}
}
