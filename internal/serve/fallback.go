package serve

// fallback.go is the degraded-mode stand-in for measured cost models:
// when an engine-timed lane's circuit breaker opens (the engine is
// panicking, stalling or erroring), the gateway reroutes pricing to an
// analytic model so requests keep completing — marked degraded — instead
// of failing. The analytic price is a simple compute-bound estimate,
// FLOPs / sustained-rate, derived from the same model config the engine
// runs; it is deliberately dependency-free and cannot itself stall.

import (
	"fmt"

	"repro/internal/model"
)

// DefaultFallbackGFLOPS is the nominal sustained compute rate assumed by
// NewAnalyticFallback when the caller passes 0: a conservative
// single-socket BF16 figure so degraded-mode latencies stay plausible.
const DefaultFallbackGFLOPS = 50

// analyticFallback prices iterations from model FLOP counts at a fixed
// sustained rate. It never errors and performs no I/O.
type analyticFallback struct {
	m       model.Config
	flopsPS float64
}

// NewAnalyticFallback returns a CostModel pricing iterations as
// FLOPs / (gflops × 1e9) over the given model configuration. It is the
// degraded-mode fallback for engine-measured lanes; gflops ≤ 0 selects
// DefaultFallbackGFLOPS.
func NewAnalyticFallback(m model.Config, gflops float64) CostModel {
	if gflops <= 0 {
		gflops = DefaultFallbackGFLOPS
	}
	return &analyticFallback{m: m, flopsPS: gflops * 1e9}
}

func (a *analyticFallback) PrefillCost(batch, inputLen int) (float64, error) {
	if batch < 1 || inputLen < 1 {
		return 0, fmt.Errorf("serve: fallback prefill needs positive batch and length, got %d, %d", batch, inputLen)
	}
	return a.m.PrefillFLOPs(inputLen, batch) / a.flopsPS, nil
}

func (a *analyticFallback) DecodeStepCost(batch, ctxLen int) (float64, error) {
	if batch < 1 || ctxLen < 1 {
		return 0, fmt.Errorf("serve: fallback decode needs positive batch and context, got %d, %d", batch, ctxLen)
	}
	return a.m.DecodeStepFLOPs(ctxLen, batch) / a.flopsPS, nil
}
