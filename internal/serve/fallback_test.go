package serve

import (
	"testing"

	"repro/internal/model"
)

func TestAnalyticFallbackPricesMonotonically(t *testing.T) {
	fb := NewAnalyticFallback(model.Tiny(model.OPT), 0)
	p1, err := fb.PrefillCost(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fb.PrefillCost(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 || p2 <= p1 {
		t.Errorf("prefill costs %g, %g not positive and increasing", p1, p2)
	}
	d1, err := fb.DecodeStepCost(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := fb.DecodeStepCost(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 || d4 <= d1 {
		t.Errorf("decode costs %g, %g not positive and batch-increasing", d1, d4)
	}
	if d1 >= p1 {
		t.Errorf("one decode step (%g) should be cheaper than a 64-token prefill (%g)", d1, p1)
	}
}

func TestAnalyticFallbackRejectsDegenerateShapes(t *testing.T) {
	fb := NewAnalyticFallback(model.Tiny(model.LLaMA2), 25)
	if _, err := fb.PrefillCost(0, 64); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := fb.DecodeStepCost(1, 0); err == nil {
		t.Error("ctx 0 accepted")
	}
}

func TestAnalyticFallbackRateScales(t *testing.T) {
	slow := NewAnalyticFallback(model.Tiny(model.OPT), 10)
	fast := NewAnalyticFallback(model.Tiny(model.OPT), 100)
	cs, _ := slow.PrefillCost(1, 64)
	cf, _ := fast.PrefillCost(1, 64)
	if cs <= cf*9.9 || cs >= cf*10.1 {
		t.Errorf("10x rate should mean ~10x cheaper: %g vs %g", cs, cf)
	}
}
