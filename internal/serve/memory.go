package serve

import (
	"fmt"
	"sort"

	"repro/internal/kvpool"
	"repro/internal/workload"
)

// MemoryAwareServer runs continuous batching under a finite KV-cache
// budget managed by a paged allocator (vLLM-style): a request is admitted
// only when blocks for its full context are available, and its blocks
// return to the pool the moment it finishes. This couples the paper's two
// resource stories — the decode-bandwidth cost model and the Fig 7
// KV-cache capacity pressure — into one scheduler.
type MemoryAwareServer struct {
	Cost     CostModel
	Pool     *kvpool.Pool
	MaxBatch int
	// Optimistic switches from conservative full-context reservation to
	// vLLM-style optimistic admission: a request is admitted with blocks
	// for its prompt only, decode iterations grow allocations token by
	// token, and on exhaustion the youngest running sequence is preempted
	// and recomputed later (vLLM's recompute policy). Preemptions waste
	// work but pack the pool tighter.
	Optimistic bool
	// Preemptions counts sequences evicted by Run (informational).
	Preemptions int
}

// memSeq is one in-flight sequence with its block allocation.
type memSeq struct {
	fl    inflight
	alloc *kvpool.Sequence
}

// Run serves the trace under the KV budget. Requests whose full context
// can never fit the pool produce an error (they would deadlock).
func (s *MemoryAwareServer) Run(trace []workload.Request) ([]Completion, error) {
	if s.Cost == nil || s.Pool == nil {
		return nil, fmt.Errorf("serve: memory-aware server needs a cost model and a pool")
	}
	if s.MaxBatch < 1 {
		s.MaxBatch = 1
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].ArrivalSeconds < trace[i-1].ArrivalSeconds {
			return nil, fmt.Errorf("serve: trace not sorted by arrival at index %d", i)
		}
	}
	if s.Optimistic {
		return s.runOptimistic(trace)
	}
	var clock float64
	var running []memSeq
	next := 0
	base := Server{Cost: s.Cost}
	out := make([]Completion, 0, len(trace))

	for len(out) < len(trace) {
		// Admission: arrival order, bounded by slots AND by KV blocks for
		// the request's full context (conservative reservation avoids
		// mid-flight preemption).
		var admitted []workload.Request
		var allocs []*kvpool.Sequence
		for next < len(trace) && len(running)+len(admitted) < s.MaxBatch &&
			trace[next].ArrivalSeconds <= clock {
			r := trace[next]
			alloc := s.Pool.NewSequence()
			if err := alloc.Append(r.InputLen + r.OutputLen); err != nil {
				if err == kvpool.ErrOutOfBlocks {
					if len(running) == 0 && len(admitted) == 0 {
						return nil, fmt.Errorf(
							"serve: request %d (ctx %d) can never fit the KV pool",
							r.ID, r.InputLen+r.OutputLen)
					}
					break // wait for blocks to free
				}
				return nil, err
			}
			admitted = append(admitted, r)
			allocs = append(allocs, alloc)
			next++
		}
		if len(admitted) > 0 {
			maxIn := 0
			for _, r := range admitted {
				if r.InputLen > maxIn {
					maxIn = r.InputLen
				}
			}
			pre, err := s.Cost.PrefillCost(len(admitted), maxIn)
			if err != nil {
				return nil, err
			}
			start := clock
			clock += pre
			for i, r := range admitted {
				fl := inflight{req: r, ctx: r.InputLen, remaining: r.OutputLen - 1,
					ttftAbs: clock, startAbs: start}
				if fl.remaining == 0 {
					out = append(out, base.complete(fl, clock))
					if err := allocs[i].Free(); err != nil {
						return nil, err
					}
					continue
				}
				running = append(running, memSeq{fl: fl, alloc: allocs[i]})
			}
			continue
		}
		if len(running) == 0 {
			if next >= len(trace) {
				break
			}
			if trace[next].ArrivalSeconds > clock {
				clock = trace[next].ArrivalSeconds
			}
			continue
		}
		// One decode iteration.
		maxCtx := 0
		for _, m := range running {
			if m.fl.ctx > maxCtx {
				maxCtx = m.fl.ctx
			}
		}
		d, err := s.Cost.DecodeStepCost(len(running), maxCtx)
		if err != nil {
			return nil, err
		}
		clock += d
		kept := running[:0]
		for _, m := range running {
			m.fl.ctx++
			m.fl.remaining--
			if m.fl.remaining == 0 {
				out = append(out, base.complete(m.fl, clock))
				if err := m.alloc.Free(); err != nil {
					return nil, err
				}
				continue
			}
			kept = append(kept, m)
		}
		running = kept
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Request.ID < out[b].Request.ID })
	return out, nil
}
