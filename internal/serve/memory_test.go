package serve

import (
	"testing"

	"repro/internal/kvpool"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// poolForSeqs builds a pool holding n full (in+out) contexts of the tiny
// model with 16-token blocks.
func poolForSeqs(t *testing.T, n, in, out int) *kvpool.Pool {
	t.Helper()
	cfg := model.Tiny(model.OPT)
	budget := cfg.KVCacheBytes(in+out, n, tensor.BF16)
	p, err := kvpool.New(cfg, tensor.BF16, 16, budget)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func memTrace(n int) []workload.Request {
	trace := make([]workload.Request, n)
	for i := range trace {
		trace[i] = workload.Request{ID: i, InputLen: 32, OutputLen: 16}
	}
	return trace
}

func TestMemoryAwareServesEverything(t *testing.T) {
	s := MemoryAwareServer{
		Cost: fixedCost{0.001, 0.02},
		Pool: poolForSeqs(t, 8, 32, 16), MaxBatch: 8,
	}
	trace := memTrace(20)
	cs, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 20 {
		t.Fatalf("served %d of 20", len(cs))
	}
	if s.Pool.FreeBlocks() != s.Pool.TotalBlocks() {
		t.Error("all blocks must return to the pool")
	}
}

// TestKVBudgetLimitsConcurrency: with blocks for only 2 concurrent
// contexts, throughput must fall well below the 8-slot unconstrained run.
func TestKVBudgetLimitsConcurrency(t *testing.T) {
	trace := memTrace(24)
	runWith := func(pool *kvpool.Pool) Summary {
		s := MemoryAwareServer{Cost: fixedCost{0.001, 0.02}, Pool: pool, MaxBatch: 8}
		cs, err := s.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(cs)
	}
	wide := runWith(poolForSeqs(t, 8, 32, 16))
	tight := runWith(poolForSeqs(t, 2, 32, 16))
	if tight.TokensPerSecond >= wide.TokensPerSecond {
		t.Errorf("tight pool (%.1f tok/s) must underperform wide pool (%.1f)",
			tight.TokensPerSecond, wide.TokensPerSecond)
	}
	if tight.MeanQueueWait <= wide.MeanQueueWait {
		t.Error("tight pool must queue requests longer")
	}
}

// TestMemoryMatchesUnconstrainedWhenAmple: with an oversized pool the
// memory-aware scheduler must behave exactly like plain continuous
// batching.
func TestMemoryMatchesUnconstrainedWhenAmple(t *testing.T) {
	g := workload.NewGenerator(5)
	g.ArrivalRate = 10
	g.MeanInputLen, g.MeanOutputLen = 24, 8
	trace := g.Trace(20)
	plain := Server{Cost: fixedCost{0.001, 0.02}, Policy: Continuous, MaxBatch: 4}
	want, err := plain.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	mem := MemoryAwareServer{Cost: fixedCost{0.001, 0.02},
		Pool: poolForSeqs(t, 64, 64, 16), MaxBatch: 4}
	got, err := mem.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Finish != got[i].Finish {
			t.Fatalf("request %d: finish %.3f vs %.3f", i, got[i].Finish, want[i].Finish)
		}
	}
}

func TestImpossibleRequestErrors(t *testing.T) {
	s := MemoryAwareServer{
		Cost: fixedCost{0.001, 0.02},
		Pool: poolForSeqs(t, 1, 16, 4), MaxBatch: 4,
	}
	// One request whose full context exceeds the whole pool.
	trace := []workload.Request{{ID: 0, InputLen: 48, OutputLen: 32}}
	if _, err := s.Run(trace); err == nil {
		t.Error("unservable request must error, not deadlock")
	}
}

func TestMemoryAwareValidation(t *testing.T) {
	s := MemoryAwareServer{}
	if _, err := s.Run(nil); err == nil {
		t.Error("missing pool/cost must fail")
	}
	s = MemoryAwareServer{Cost: fixedCost{0.001, 0.02}, Pool: poolForSeqs(t, 2, 32, 16)}
	bad := []workload.Request{
		{ID: 0, InputLen: 1, OutputLen: 1, ArrivalSeconds: 5},
		{ID: 1, InputLen: 1, OutputLen: 1, ArrivalSeconds: 1},
	}
	if _, err := s.Run(bad); err == nil {
		t.Error("unsorted trace must fail")
	}
}
