package serve

import (
	"fmt"
	"sort"

	"repro/internal/kvpool"
	"repro/internal/workload"
)

// optSeq is one optimistically-admitted in-flight sequence.
type optSeq struct {
	fl        inflight
	alloc     *kvpool.Sequence
	admitted  float64 // admission time; preemption evicts the youngest
	firstTTFT float64 // TTFT from the FIRST prefill (survives preemption)
	grew      bool    // this round's token slot already reserved
}

// runOptimistic implements vLLM-style scheduling: prompt-only reservation
// at admission, per-token growth during decode, and preemption-by-
// recompute of the youngest sequence on pool exhaustion.
func (s *MemoryAwareServer) runOptimistic(trace []workload.Request) ([]Completion, error) {
	var clock float64
	var running []optSeq
	var waiting []workload.Request // preempted, awaiting readmission
	firstTTFT := map[int]float64{} // request ID → first-prefill TTFT
	next := 0
	out := make([]Completion, 0, len(trace))

	nextArrival := func() (workload.Request, bool) {
		if len(waiting) > 0 {
			return waiting[0], true
		}
		if next < len(trace) && trace[next].ArrivalSeconds <= clock {
			return trace[next], true
		}
		return workload.Request{}, false
	}
	popArrival := func() {
		if len(waiting) > 0 {
			waiting = waiting[1:]
			return
		}
		next++
	}

	for len(out) < len(trace) {
		// Admission: prompt blocks only.
		var admitted []workload.Request
		var allocs []*kvpool.Sequence
		for len(running)+len(admitted) < s.MaxBatch {
			r, ok := nextArrival()
			if !ok {
				break
			}
			alloc := s.Pool.NewSequence()
			if err := alloc.Append(r.InputLen); err != nil {
				if err == kvpool.ErrOutOfBlocks {
					if len(running) == 0 && len(admitted) == 0 {
						return nil, fmt.Errorf(
							"serve: request %d prompt (%d tokens) can never fit the KV pool",
							r.ID, r.InputLen)
					}
					break
				}
				return nil, err
			}
			admitted = append(admitted, r)
			allocs = append(allocs, alloc)
			popArrival()
		}
		if len(admitted) > 0 {
			maxIn := 0
			for _, r := range admitted {
				if r.InputLen > maxIn {
					maxIn = r.InputLen
				}
			}
			pre, err := s.Cost.PrefillCost(len(admitted), maxIn)
			if err != nil {
				return nil, err
			}
			start := clock
			clock += pre
			for i, r := range admitted {
				if _, seen := firstTTFT[r.ID]; !seen {
					firstTTFT[r.ID] = clock - r.ArrivalSeconds
				}
				fl := inflight{req: r, ctx: r.InputLen, remaining: r.OutputLen - 1,
					ttftAbs: clock, startAbs: start}
				seq := optSeq{fl: fl, alloc: allocs[i], admitted: start,
					firstTTFT: firstTTFT[r.ID]}
				if fl.remaining == 0 {
					out = append(out, s.completeOpt(seq, clock))
					if err := allocs[i].Free(); err != nil {
						return nil, err
					}
					continue
				}
				running = append(running, seq)
			}
			continue
		}
		if len(running) == 0 {
			if next >= len(trace) && len(waiting) == 0 {
				break
			}
			if next < len(trace) && trace[next].ArrivalSeconds > clock {
				clock = trace[next].ArrivalSeconds
				continue
			}
			// Only waiting (preempted) requests remain but none fit: the
			// pool must at least fit one prompt, which admission checks.
			return nil, fmt.Errorf("serve: scheduler stalled with %d preempted requests", len(waiting))
		}
		// Grow every running sequence by one token, preempting the
		// youngest until the growth fits. Sequences that already reserved
		// their slot this round are skipped on retries (a failed Append
		// mutates nothing).
		for i := range running {
			running[i].grew = false
		}
		for {
			ok := true
			for i := range running {
				if running[i].grew {
					continue
				}
				if err := running[i].alloc.Append(1); err != nil {
					if err != kvpool.ErrOutOfBlocks {
						return nil, err
					}
					ok = false
					break
				}
				running[i].grew = true
			}
			if ok {
				break
			}
			if len(running) == 1 {
				return nil, fmt.Errorf("serve: request %d cannot grow within the KV pool",
					running[0].fl.req.ID)
			}
			sort.SliceStable(running, func(a, b int) bool {
				return running[a].admitted < running[b].admitted
			})
			victim := running[len(running)-1]
			running = running[:len(running)-1]
			if err := victim.alloc.Free(); err != nil {
				return nil, err
			}
			s.Preemptions++
			waiting = append(waiting, victim.fl.req)
		}
		maxCtx := 0
		for _, m := range running {
			if m.fl.ctx > maxCtx {
				maxCtx = m.fl.ctx
			}
		}
		d, err := s.Cost.DecodeStepCost(len(running), maxCtx)
		if err != nil {
			return nil, err
		}
		clock += d
		kept := running[:0]
		for _, m := range running {
			m.fl.ctx++
			m.fl.remaining--
			if m.fl.remaining == 0 {
				out = append(out, s.completeOpt(m, clock))
				if err := m.alloc.Free(); err != nil {
					return nil, err
				}
				continue
			}
			kept = append(kept, m)
		}
		running = kept
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Request.ID < out[b].Request.ID })
	return out, nil
}

func (s *MemoryAwareServer) completeOpt(m optSeq, finish float64) Completion {
	return Completion{
		Request:   m.fl.req,
		QueueWait: m.fl.startAbs - m.fl.req.ArrivalSeconds,
		TTFT:      m.firstTTFT,
		E2E:       finish - m.fl.req.ArrivalSeconds,
		Finish:    finish,
	}
}
