package serve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func optServer(t *testing.T, poolSeqs int, optimistic bool) *MemoryAwareServer {
	t.Helper()
	return &MemoryAwareServer{
		Cost:       fixedCost{0.001, 0.02},
		Pool:       poolForSeqs(t, poolSeqs, 32, 16),
		MaxBatch:   8,
		Optimistic: optimistic,
	}
}

func TestOptimisticServesEverything(t *testing.T) {
	s := optServer(t, 3, true)
	trace := memTrace(16)
	cs, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 16 {
		t.Fatalf("served %d of 16", len(cs))
	}
	seen := map[int]bool{}
	for _, c := range cs {
		if seen[c.Request.ID] {
			t.Fatalf("request %d completed twice", c.Request.ID)
		}
		seen[c.Request.ID] = true
		if c.E2E < 0 || c.TTFT < 0 {
			t.Fatalf("negative metrics: %+v", c)
		}
	}
	if s.Pool.FreeBlocks() != s.Pool.TotalBlocks() {
		t.Error("blocks leaked")
	}
}

// TestOptimisticPreemptsUnderPressure: with a pool sized for ~2 full
// contexts and 8 slots, optimistic admission must overcommit and preempt.
func TestOptimisticPreemptsUnderPressure(t *testing.T) {
	s := optServer(t, 2, true)
	if _, err := s.Run(memTrace(12)); err != nil {
		t.Fatal(err)
	}
	if s.Preemptions == 0 {
		t.Error("expected preemptions under pool pressure")
	}
}

// TestOptimisticPacksTighter: under pressure, optimistic admission should
// match or beat conservative reservation on throughput (it runs more
// sequences concurrently between preemptions).
func TestOptimisticPacksTighter(t *testing.T) {
	trace := memTrace(24)
	conservative := optServer(t, 3, false)
	csC, err := conservative.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	optimistic := optServer(t, 3, true)
	csO, err := optimistic.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	smC, smO := Summarize(csC), Summarize(csO)
	if smO.TokensPerSecond < smC.TokensPerSecond*0.9 {
		t.Errorf("optimistic %.1f tok/s fell >10%% below conservative %.1f",
			smO.TokensPerSecond, smC.TokensPerSecond)
	}
}

// TestOptimisticMatchesConservativeWhenAmple: with plenty of blocks the
// two admission policies must schedule identically.
func TestOptimisticMatchesConservativeWhenAmple(t *testing.T) {
	trace := memTrace(12)
	a, err := optServer(t, 32, false).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := optServer(t, 32, true).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Finish != b[i].Finish {
			t.Fatalf("request %d: %.3f vs %.3f", i, a[i].Finish, b[i].Finish)
		}
	}
}

// TestOptimisticCompletionProperty: for any trace of requests that each
// individually fit the pool, optimistic Run terminates (no deadlock or
// livelock from preemption churn), completes every request exactly once
// with sane metrics, and returns every block to the pool.
func TestOptimisticCompletionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := optServer(t, 3, true) // 3 × 48 tokens = 144-token capacity
		capacity := s.Pool.TotalBlocks() * s.Pool.BlockSize()
		n := 1 + rng.Intn(20)
		trace := make([]workload.Request, n)
		var clock float64
		for i := range trace {
			in := 1 + rng.Intn(capacity-1)
			out := 1 + rng.Intn(capacity-in)
			clock += rng.Float64() * 0.05
			trace[i] = workload.Request{ID: i, InputLen: in, OutputLen: out,
				ArrivalSeconds: clock}
		}
		cs, err := s.Run(trace)
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		if len(cs) != n {
			t.Logf("seed %d: completed %d of %d", seed, len(cs), n)
			return false
		}
		seen := map[int]bool{}
		for _, c := range cs {
			if seen[c.Request.ID] || c.E2E < 0 || c.TTFT < 0 || c.Finish < c.Request.ArrivalSeconds {
				t.Logf("seed %d: bad completion %+v (dup=%v)", seed, c, seen[c.Request.ID])
				return false
			}
			seen[c.Request.ID] = true
		}
		if s.Pool.FreeBlocks() != s.Pool.TotalBlocks() {
			t.Logf("seed %d: leaked blocks (%d free of %d)", seed,
				s.Pool.FreeBlocks(), s.Pool.TotalBlocks())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestOptimisticUnservablePrompt: a prompt that can never fit must error.
func TestOptimisticUnservablePrompt(t *testing.T) {
	s := optServer(t, 1, true) // pool: 48 tokens
	trace := []workload.Request{{ID: 0, InputLen: 64, OutputLen: 4}}
	if _, err := s.Run(trace); err == nil {
		t.Error("oversized prompt must error")
	}
}

// TestOptimisticSingleGrowthFailure: one sequence that cannot grow within
// the whole pool must error rather than livelock.
func TestOptimisticSingleGrowthFailure(t *testing.T) {
	s := optServer(t, 1, true) // exactly one 48-token context (32+16)
	trace := []workload.Request{{ID: 0, InputLen: 48, OutputLen: 8}}
	if _, err := s.Run(trace); err == nil {
		t.Error("ungrowable sequence must error")
	}
}
