package serve

import (
	"testing"

	"repro/internal/workload"
)

func optServer(t *testing.T, poolSeqs int, optimistic bool) *MemoryAwareServer {
	t.Helper()
	return &MemoryAwareServer{
		Cost:       fixedCost{0.001, 0.02},
		Pool:       poolForSeqs(t, poolSeqs, 32, 16),
		MaxBatch:   8,
		Optimistic: optimistic,
	}
}

func TestOptimisticServesEverything(t *testing.T) {
	s := optServer(t, 3, true)
	trace := memTrace(16)
	cs, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 16 {
		t.Fatalf("served %d of 16", len(cs))
	}
	seen := map[int]bool{}
	for _, c := range cs {
		if seen[c.Request.ID] {
			t.Fatalf("request %d completed twice", c.Request.ID)
		}
		seen[c.Request.ID] = true
		if c.E2E < 0 || c.TTFT < 0 {
			t.Fatalf("negative metrics: %+v", c)
		}
	}
	if s.Pool.FreeBlocks() != s.Pool.TotalBlocks() {
		t.Error("blocks leaked")
	}
}

// TestOptimisticPreemptsUnderPressure: with a pool sized for ~2 full
// contexts and 8 slots, optimistic admission must overcommit and preempt.
func TestOptimisticPreemptsUnderPressure(t *testing.T) {
	s := optServer(t, 2, true)
	if _, err := s.Run(memTrace(12)); err != nil {
		t.Fatal(err)
	}
	if s.Preemptions == 0 {
		t.Error("expected preemptions under pool pressure")
	}
}

// TestOptimisticPacksTighter: under pressure, optimistic admission should
// match or beat conservative reservation on throughput (it runs more
// sequences concurrently between preemptions).
func TestOptimisticPacksTighter(t *testing.T) {
	trace := memTrace(24)
	conservative := optServer(t, 3, false)
	csC, err := conservative.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	optimistic := optServer(t, 3, true)
	csO, err := optimistic.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	smC, smO := Summarize(csC), Summarize(csO)
	if smO.TokensPerSecond < smC.TokensPerSecond*0.9 {
		t.Errorf("optimistic %.1f tok/s fell >10%% below conservative %.1f",
			smO.TokensPerSecond, smC.TokensPerSecond)
	}
}

// TestOptimisticMatchesConservativeWhenAmple: with plenty of blocks the
// two admission policies must schedule identically.
func TestOptimisticMatchesConservativeWhenAmple(t *testing.T) {
	trace := memTrace(12)
	a, err := optServer(t, 32, false).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := optServer(t, 32, true).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Finish != b[i].Finish {
			t.Fatalf("request %d: %.3f vs %.3f", i, a[i].Finish, b[i].Finish)
		}
	}
}

// TestOptimisticUnservablePrompt: a prompt that can never fit must error.
func TestOptimisticUnservablePrompt(t *testing.T) {
	s := optServer(t, 1, true) // pool: 48 tokens
	trace := []workload.Request{{ID: 0, InputLen: 64, OutputLen: 4}}
	if _, err := s.Run(trace); err == nil {
		t.Error("oversized prompt must error")
	}
}

// TestOptimisticSingleGrowthFailure: one sequence that cannot grow within
// the whole pool must error rather than livelock.
func TestOptimisticSingleGrowthFailure(t *testing.T) {
	s := optServer(t, 1, true) // exactly one 48-token context (32+16)
	trace := []workload.Request{{ID: 0, InputLen: 48, OutputLen: 8}}
	if _, err := s.Run(trace); err == nil {
		t.Error("ungrowable sequence must error")
	}
}
