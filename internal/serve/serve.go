// Package serve is a discrete-event simulator of an LLM inference server
// fed by a request trace. It implements the batching disciplines the
// paper's context discusses (§II-C, §VII): first-come-first-served
// single-request execution, static batching as in TorchServe/Triton, and
// Orca-style continuous (iteration-level) batching, all priced by the
// platform performance model. It turns the paper's per-point metrics into
// serving-level ones: queueing delay, TTFT under load, tail latency, and
// sustained tokens/s.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/counters"
	"repro/internal/workload"
)

// CostModel prices the two phase primitives a server schedules.
type CostModel interface {
	// PrefillCost returns the seconds to prefill a batch of equal-length
	// prompts.
	PrefillCost(batch, inputLen int) (float64, error)
	// DecodeStepCost returns the seconds of one decode iteration for
	// `batch` sequences whose longest context is ctxLen.
	DecodeStepCost(batch, ctxLen int) (float64, error)
}

// CounterModel is optionally implemented by cost models that can report
// the emulated hardware counters (internal/counters) behind a priced
// phase. The gateway attaches these reports to trace spans, so a slow
// request can be attributed to LLC misses or memory-boundedness the way
// the paper attributes whole runs. Models without counter emulation
// (measured engines, GPUs) simply don't implement it.
type CounterModel interface {
	// PhaseCounters returns the counter report for the same phase shape
	// PrefillCost/DecodeStepCost price, and whether one is available.
	PhaseCounters(prefill bool, batch, length int) (counters.Report, bool)
}

// Policy selects the batching discipline.
type Policy int

const (
	// FCFS runs one request at a time in arrival order.
	FCFS Policy = iota
	// Static groups up to MaxBatch requests (waiting at most BatchWait
	// after the first arrival), pads them to the longest prompt and
	// generation, and runs the whole batch to completion.
	Static
	// Continuous schedules at iteration granularity (Orca): sequences
	// join mid-flight when slots free and leave the moment they finish.
	Continuous
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case Static:
		return "static"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Server is one simulated inference server.
type Server struct {
	Cost     CostModel
	Policy   Policy
	MaxBatch int
	// BatchWait is the static policy's fill timeout: a partial batch
	// launches this long after its first request arrived.
	BatchWait float64
}

// Completion records one served request.
type Completion struct {
	Request   workload.Request
	QueueWait float64 // arrival → execution start
	TTFT      float64 // arrival → first token
	E2E       float64 // arrival → last token
	Finish    float64 // absolute completion time
}

// Summary aggregates a run.
type Summary struct {
	Count           int
	Makespan        float64
	TokensPerSecond float64
	MeanQueueWait   float64
	MeanTTFT        float64
	P95TTFT         float64
	MeanE2E         float64
	P95E2E          float64
}

// Run serves the trace (which must be sorted by arrival time) and returns
// per-request completions in arrival order.
func (s *Server) Run(trace []workload.Request) ([]Completion, error) {
	if s.Cost == nil {
		return nil, fmt.Errorf("serve: nil cost model")
	}
	if s.MaxBatch < 1 {
		s.MaxBatch = 1
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].ArrivalSeconds < trace[i-1].ArrivalSeconds {
			return nil, fmt.Errorf("serve: trace not sorted by arrival at index %d", i)
		}
	}
	switch s.Policy {
	case FCFS:
		return s.runFCFS(trace)
	case Static:
		return s.runStatic(trace)
	case Continuous:
		return s.runContinuous(trace)
	default:
		return nil, fmt.Errorf("serve: unknown policy %d", int(s.Policy))
	}
}

func (s *Server) runFCFS(trace []workload.Request) ([]Completion, error) {
	var clock float64
	out := make([]Completion, 0, len(trace))
	for _, r := range trace {
		if r.ArrivalSeconds > clock {
			clock = r.ArrivalSeconds
		}
		start := clock
		pre, err := s.Cost.PrefillCost(1, r.InputLen)
		if err != nil {
			return nil, err
		}
		clock += pre
		ttft := clock - r.ArrivalSeconds
		for step := 1; step < r.OutputLen; step++ {
			d, err := s.Cost.DecodeStepCost(1, r.InputLen+step)
			if err != nil {
				return nil, err
			}
			clock += d
		}
		out = append(out, Completion{
			Request: r, QueueWait: start - r.ArrivalSeconds,
			TTFT: ttft, E2E: clock - r.ArrivalSeconds, Finish: clock,
		})
	}
	return out, nil
}

func (s *Server) runStatic(trace []workload.Request) ([]Completion, error) {
	var clock float64
	out := make([]Completion, 0, len(trace))
	i := 0
	for i < len(trace) {
		// Form the next batch: it launches when full, or BatchWait after
		// its first request arrived (whichever is earlier), and never
		// before the server is free.
		first := trace[i]
		n := 1
		launch := first.ArrivalSeconds + s.BatchWait
		for i+n < len(trace) && n < s.MaxBatch && trace[i+n].ArrivalSeconds <= launch {
			n++
		}
		if n == s.MaxBatch {
			launch = trace[i+n-1].ArrivalSeconds
		}
		if clock > launch {
			launch = clock
		}
		batch := trace[i : i+n]
		maxIn, maxOut := 0, 0
		for _, r := range batch {
			if r.InputLen > maxIn {
				maxIn = r.InputLen
			}
			if r.OutputLen > maxOut {
				maxOut = r.OutputLen
			}
		}
		pre, err := s.Cost.PrefillCost(n, maxIn)
		if err != nil {
			return nil, err
		}
		t := launch + pre
		ttftAbs := t
		for step := 1; step < maxOut; step++ {
			d, err := s.Cost.DecodeStepCost(n, maxIn+step)
			if err != nil {
				return nil, err
			}
			t += d
		}
		// Static batching: every request in the batch completes when the
		// padded batch does.
		for _, r := range batch {
			out = append(out, Completion{
				Request: r, QueueWait: launch - r.ArrivalSeconds,
				TTFT: ttftAbs - r.ArrivalSeconds, E2E: t - r.ArrivalSeconds,
				Finish: t,
			})
		}
		clock = t
		i += n
	}
	return out, nil
}

// inflight is one sequence being decoded under continuous batching.
type inflight struct {
	req       workload.Request
	ctx       int // tokens in the KV cache
	remaining int // output tokens still to produce
	ttftAbs   float64
	startAbs  float64
}

func (s *Server) runContinuous(trace []workload.Request) ([]Completion, error) {
	var clock float64
	var running []inflight
	next := 0
	out := make([]Completion, 0, len(trace))

	for len(out) < len(trace) {
		// Admit waiting requests into free slots; each admission pays its
		// prefill as an iteration of its own batch (chunked-prefill-free
		// Orca: prefills run as dedicated iterations).
		var admitted []workload.Request
		for next < len(trace) && len(running)+len(admitted) < s.MaxBatch &&
			trace[next].ArrivalSeconds <= clock {
			admitted = append(admitted, trace[next])
			next++
		}
		if len(admitted) > 0 {
			maxIn := 0
			for _, r := range admitted {
				if r.InputLen > maxIn {
					maxIn = r.InputLen
				}
			}
			pre, err := s.Cost.PrefillCost(len(admitted), maxIn)
			if err != nil {
				return nil, err
			}
			start := clock
			clock += pre
			for _, r := range admitted {
				fl := inflight{req: r, ctx: r.InputLen, remaining: r.OutputLen - 1,
					ttftAbs: clock, startAbs: start}
				if fl.remaining == 0 {
					out = append(out, s.complete(fl, clock))
					continue
				}
				running = append(running, fl)
			}
			continue
		}
		if len(running) == 0 {
			// Idle: jump to the next arrival.
			if next >= len(trace) {
				break
			}
			if trace[next].ArrivalSeconds > clock {
				clock = trace[next].ArrivalSeconds
			}
			continue
		}
		// One decode iteration for every running sequence.
		maxCtx := 0
		for _, fl := range running {
			if fl.ctx > maxCtx {
				maxCtx = fl.ctx
			}
		}
		d, err := s.Cost.DecodeStepCost(len(running), maxCtx)
		if err != nil {
			return nil, err
		}
		clock += d
		kept := running[:0]
		for _, fl := range running {
			fl.ctx++
			fl.remaining--
			if fl.remaining == 0 {
				out = append(out, s.complete(fl, clock))
				continue
			}
			kept = append(kept, fl)
		}
		running = kept
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Request.ID < out[b].Request.ID })
	return out, nil
}

func (s *Server) complete(fl inflight, finish float64) Completion {
	return Completion{
		Request:   fl.req,
		QueueWait: fl.startAbs - fl.req.ArrivalSeconds,
		TTFT:      fl.ttftAbs - fl.req.ArrivalSeconds,
		E2E:       finish - fl.req.ArrivalSeconds,
		Finish:    finish,
	}
}

// Summarize aggregates completions into serving metrics.
func Summarize(cs []Completion) Summary {
	var sm Summary
	sm.Count = len(cs)
	if len(cs) == 0 {
		return sm
	}
	var ttfts, e2es []float64
	var tokens int
	var firstArrival = cs[0].Request.ArrivalSeconds
	for _, c := range cs {
		sm.MeanQueueWait += c.QueueWait
		sm.MeanTTFT += c.TTFT
		sm.MeanE2E += c.E2E
		ttfts = append(ttfts, c.TTFT)
		e2es = append(e2es, c.E2E)
		tokens += c.Request.OutputLen
		if c.Finish > sm.Makespan {
			sm.Makespan = c.Finish
		}
		if c.Request.ArrivalSeconds < firstArrival {
			firstArrival = c.Request.ArrivalSeconds
		}
	}
	n := float64(len(cs))
	sm.MeanQueueWait /= n
	sm.MeanTTFT /= n
	sm.MeanE2E /= n
	sm.P95TTFT = percentile(ttfts, 0.95)
	sm.P95E2E = percentile(e2es, 0.95)
	if span := sm.Makespan - firstArrival; span > 0 {
		sm.TokensPerSecond = float64(tokens) / span
	}
	return sm
}

func percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
