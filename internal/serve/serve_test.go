package serve

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// fixedCost is a deterministic synthetic cost model for scheduler tests:
// prefill costs base·inputLen·softening(batch), decode steps cost
// base·softening(batch) — batching amortizes cost sub-linearly, as on the
// real platforms.
type fixedCost struct {
	prefillPerToken float64
	decodeStep      float64
}

func soften(batch int) float64 {
	// cost(batch)/batch decreases: batch b costs b^0.5 of the unit cost.
	f := 1.0
	for i := 1; i < batch; i++ {
		f += 0.3
	}
	return f
}

func (c fixedCost) PrefillCost(batch, inputLen int) (float64, error) {
	return c.prefillPerToken * float64(inputLen) * soften(batch) / float64(batch) * float64(batch) / float64(batch), nil
}

func (c fixedCost) DecodeStepCost(batch, ctxLen int) (float64, error) {
	return c.decodeStep * soften(batch), nil
}

func testTrace(n int, rate float64, seed int64) []workload.Request {
	g := workload.NewGenerator(seed)
	g.ArrivalRate = rate
	return g.Trace(n)
}

func run(t *testing.T, p Policy, trace []workload.Request, maxBatch int) ([]Completion, Summary) {
	t.Helper()
	s := Server{Cost: fixedCost{prefillPerToken: 0.001, decodeStep: 0.05},
		Policy: p, MaxBatch: maxBatch, BatchWait: 0.5}
	cs, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	return cs, Summarize(cs)
}

func TestAllPoliciesServeEverything(t *testing.T) {
	trace := testTrace(40, 5, 1)
	for _, p := range []Policy{FCFS, Static, Continuous} {
		cs, _ := run(t, p, trace, 8)
		if len(cs) != len(trace) {
			t.Fatalf("%s: served %d of %d", p, len(cs), len(trace))
		}
		for _, c := range cs {
			if c.QueueWait < -1e-9 || c.TTFT < c.QueueWait || c.E2E < c.TTFT-1e-9 {
				t.Fatalf("%s: inconsistent completion %+v", p, c)
			}
			if c.Finish < c.Request.ArrivalSeconds {
				t.Fatalf("%s: finished before arrival", p)
			}
		}
	}
}

// TestBatchingImprovesThroughput: under load, static batching must beat
// FCFS on sustained tokens/s, and continuous batching must at least match
// static.
func TestBatchingImprovesThroughput(t *testing.T) {
	trace := testTrace(60, 20, 2) // heavy load
	_, fcfs := run(t, FCFS, trace, 8)
	_, static := run(t, Static, trace, 8)
	_, cont := run(t, Continuous, trace, 8)
	if static.TokensPerSecond <= fcfs.TokensPerSecond {
		t.Errorf("static (%.1f tok/s) must beat FCFS (%.1f)",
			static.TokensPerSecond, fcfs.TokensPerSecond)
	}
	if cont.TokensPerSecond < static.TokensPerSecond*0.95 {
		t.Errorf("continuous (%.1f tok/s) must be ≥ static (%.1f)",
			cont.TokensPerSecond, static.TokensPerSecond)
	}
}

// TestContinuousCutsTailLatency: with heterogeneous output lengths,
// iteration-level scheduling releases short requests early, cutting mean
// E2E versus padded static batches (Orca's core claim).
func TestContinuousCutsTailLatency(t *testing.T) {
	g := workload.NewGenerator(3)
	g.ArrivalRate = 20
	g.LenJitter = 0.9 // strongly heterogeneous
	trace := g.Trace(60)
	_, static := run(t, Static, trace, 8)
	_, cont := run(t, Continuous, trace, 8)
	if cont.MeanE2E >= static.MeanE2E {
		t.Errorf("continuous mean E2E %.2fs must beat static %.2fs",
			cont.MeanE2E, static.MeanE2E)
	}
}

// TestLightLoadFCFSFine: with sparse arrivals, all policies are close —
// there is nothing to batch.
func TestLightLoadFCFSFine(t *testing.T) {
	trace := testTrace(10, 0.1, 4) // one request every ~10s
	_, fcfs := run(t, FCFS, trace, 8)
	_, cont := run(t, Continuous, trace, 8)
	if ratio := fcfs.MeanE2E / cont.MeanE2E; ratio < 0.9 || ratio > 1.2 {
		t.Errorf("light-load policies should be close: fcfs %.2f vs cont %.2f",
			fcfs.MeanE2E, cont.MeanE2E)
	}
}

func TestStaticBatchWaitBounds(t *testing.T) {
	// Two requests arriving 0.1s apart with BatchWait 0.5 must share a
	// batch; with BatchWait 0 they must not.
	trace := []workload.Request{
		{ID: 0, InputLen: 16, OutputLen: 4, ArrivalSeconds: 0},
		{ID: 1, InputLen: 16, OutputLen: 4, ArrivalSeconds: 0.1},
	}
	s := Server{Cost: fixedCost{0.001, 0.05}, Policy: Static, MaxBatch: 4, BatchWait: 0.5}
	cs, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Finish != cs[1].Finish {
		t.Error("requests within the wait window must share a batch")
	}
	s.BatchWait = 0
	cs, err = s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Finish == cs[1].Finish {
		t.Error("requests outside the wait window must not share a batch")
	}
}

func TestContinuousRespectsMaxBatch(t *testing.T) {
	// 20 simultaneous arrivals, MaxBatch 4: TTFTs must form waves.
	trace := make([]workload.Request, 20)
	for i := range trace {
		trace[i] = workload.Request{ID: i, InputLen: 16, OutputLen: 8}
	}
	cs, _ := run(t, Continuous, trace, 4)
	first, last := cs[0].TTFT, cs[len(cs)-1].TTFT
	if last <= first {
		t.Error("later admissions must see higher TTFT")
	}
}

func TestRunValidation(t *testing.T) {
	s := Server{Policy: FCFS}
	if _, err := s.Run(nil); err == nil {
		t.Error("nil cost model must fail")
	}
	s.Cost = fixedCost{0.001, 0.05}
	bad := []workload.Request{
		{ID: 0, InputLen: 1, OutputLen: 1, ArrivalSeconds: 5},
		{ID: 1, InputLen: 1, OutputLen: 1, ArrivalSeconds: 1},
	}
	if _, err := s.Run(bad); err == nil {
		t.Error("unsorted trace must fail")
	}
	s.Policy = Policy(99)
	if _, err := s.Run(nil); err == nil {
		t.Error("unknown policy must fail")
	}
	// MaxBatch < 1 clamps rather than failing.
	s = Server{Cost: fixedCost{0.001, 0.05}, Policy: FCFS, MaxBatch: 0}
	if _, err := s.Run(testTrace(3, 1, 5)); err != nil {
		t.Error(err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sm := Summarize(nil)
	if sm.Count != 0 || sm.TokensPerSecond != 0 {
		t.Error("empty summary must be zero")
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || Static.String() != "static" || Continuous.String() != "continuous" {
		t.Error("policy names wrong")
	}
}

// TestConservationProperty: every policy serves each request exactly once
// with non-negative waits, for arbitrary traces.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw, batchRaw uint8) bool {
		n := int(nRaw%30) + 1
		maxBatch := int(batchRaw%8) + 1
		trace := testTrace(n, 10, seed)
		for _, p := range []Policy{FCFS, Static, Continuous} {
			s := Server{Cost: fixedCost{0.001, 0.02}, Policy: p,
				MaxBatch: maxBatch, BatchWait: 0.2}
			cs, err := s.Run(trace)
			if err != nil || len(cs) != n {
				return false
			}
			seen := map[int]bool{}
			for _, c := range cs {
				if seen[c.Request.ID] || c.QueueWait < -1e-9 || c.E2E < 0 {
					return false
				}
				seen[c.Request.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRealCostModels: the CPU and GPU adapters must price sensible
// iterations and integrate with the scheduler.
func TestRealCostModels(t *testing.T) {
	cpu := NewCPUCost(memsim.Config{CPU: hw.SPRMax9468, Cores: 48,
		Mem: memsim.Flat, Cluster: memsim.Quad}, model.Llama13B)
	pre, err := cpu.PrefillCost(4, 128)
	if err != nil || pre <= 0 {
		t.Fatalf("cpu prefill: %v %v", pre, err)
	}
	dec, err := cpu.DecodeStepCost(4, 128)
	if err != nil || dec <= 0 {
		t.Fatalf("cpu decode: %v %v", dec, err)
	}
	// Memoized second call must agree: 129 and 130 share the 160 bucket.
	decA, _ := cpu.DecodeStepCost(4, 129)
	decB, _ := cpu.DecodeStepCost(4, 130)
	if decA != decB {
		t.Error("context bucketing broken")
	}

	gpu := NewGPUCost(hw.H100, model.OPT66B) // offloaded path
	gdec, err := gpu.DecodeStepCost(1, 128)
	if err != nil || gdec <= dec {
		t.Fatalf("offloaded H100 decode (%.2fs) must exceed CPU (%.3fs): %v",
			gdec, dec, err)
	}

	s := Server{Cost: cpu, Policy: Continuous, MaxBatch: 8}
	cs, err := s.Run(testTrace(12, 5, 6))
	if err != nil || len(cs) != 12 {
		t.Fatalf("serving over real cost model failed: %v", err)
	}
}
