package serve

// speccost.go prices the two extra primitives speculative decoding adds to
// a lane: draft decode steps and fused multi-row verification passes. The
// analytic flavor reuses the specdec roofline (weights stream once per
// pass, compute and KV IO scale with rows); the measured flavor times the
// real engines the way enginecost.go does.

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/specdec"
)

// SpecCostModel extends CostModel with speculative-decoding primitives. A
// lane whose cost model implements it can run draft-assisted decode
// iterations: k draft steps plus one fused verification pass replace up to
// k+1 plain decode steps.
type SpecCostModel interface {
	CostModel
	// DraftStepCost returns the seconds of one draft-model decode
	// iteration at the given batch and context.
	DraftStepCost(batch, ctxLen int) (float64, error)
	// VerifyCost returns the seconds of one fused target pass verifying
	// `rows` rows (k proposals + 1 carry token) per sequence.
	VerifyCost(batch, ctxLen, rows int) (float64, error)
}

type verifyKey struct {
	batch, length, rows int
}

// specCPUCost prices speculation analytically on a modeled CPU.
type specCPUCost struct {
	CostModel // target pricing (prefill + plain decode)
	draft     CostModel

	setup  memsim.Config
	target model.Config

	mu     sync.Mutex
	verify map[verifyKey]float64
}

// NewSpecCPUCost returns a SpecCostModel pricing a target/draft pair on
// the modeled platform. Prefill and plain decode match NewCPUCost for the
// target exactly — a lane that never speculates behaves identically.
func NewSpecCPUCost(setup memsim.Config, target, draft model.Config) SpecCostModel {
	return &specCPUCost{
		CostModel: NewCPUCost(setup, target),
		draft:     NewCPUCost(setup, draft),
		setup:     setup,
		target:    target,
		verify:    map[verifyKey]float64{},
	}
}

func (c *specCPUCost) DraftStepCost(batch, ctxLen int) (float64, error) {
	return c.draft.DecodeStepCost(batch, ctxLen)
}

func (c *specCPUCost) VerifyCost(batch, ctxLen, rows int) (float64, error) {
	if rows < 1 {
		rows = 1
	}
	length := (ctxLen + ctxBucket - 1) / ctxBucket * ctxBucket
	k := verifyKey{batch, length, rows}
	c.mu.Lock()
	if v, ok := c.verify[k]; ok {
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	if length < 1 {
		length = 1
	}
	v, err := specdec.VerifySeconds(c.target, c.setup, batch, length, rows)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.verify[k] = v
	c.mu.Unlock()
	return v, nil
}

// specEngineCost prices speculation by timing the real engines.
type specEngineCost struct {
	CostModel // measured target pricing
	draftCost CostModel

	mu     sync.Mutex
	target *engine.Engine
	rng    *rand.Rand
	verify map[verifyKey]float64
}

// NewSpecEngineCost returns a SpecCostModel backed by measured execution:
// the target engine prices prefill/decode/verification and the draft
// engine prices its own steps. Both engines must share a vocabulary (the
// caller builds them from the same registry family).
func NewSpecEngineCost(target, draft *engine.Engine) SpecCostModel {
	return &specEngineCost{
		CostModel: NewEngineCost(target),
		draftCost: NewEngineCost(draft),
		target:    target,
		rng:       rand.New(rand.NewSource(2)),
		verify:    map[verifyKey]float64{},
	}
}

func (c *specEngineCost) DraftStepCost(batch, ctxLen int) (float64, error) {
	return c.draftCost.DecodeStepCost(batch, ctxLen)
}

// VerifyCost rebuilds ctx tokens of KV state and times one VerifyRows
// pass over `rows` rows. Batched verification runs per sequence (the
// fused pass packs one sequence's rows), so the measurement multiplies by
// the batch.
func (c *specEngineCost) VerifyCost(batch, ctxLen, rows int) (float64, error) {
	if rows < 1 {
		rows = 1
	}
	if batch < 1 {
		batch = 1
	}
	length := (ctxLen + ctxBucket - 1) / ctxBucket * ctxBucket
	k := verifyKey{batch, length, rows}
	c.mu.Lock()
	if v, ok := c.verify[k]; ok {
		c.mu.Unlock()
		return v, nil
	}
	cfg := c.target.Config()
	ctx := length
	if max := cfg.MaxSeq - rows - 1; ctx > max {
		ctx = max
	}
	if ctx < 1 {
		ctx = 1
	}
	prompt := make([]int, ctx)
	for i := range prompt {
		prompt[i] = c.rng.Intn(cfg.Vocab)
	}
	toks := make([]int, rows)
	for i := range toks {
		toks[i] = c.rng.Intn(cfg.Vocab)
	}
	s := c.target.NewSession(1, ctx+rows+1)
	if _, err := c.target.Prefill(s, [][]int{prompt}); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	start := time.Now()
	_, err := c.target.VerifyRows(s, toks)
	v := time.Since(start).Seconds() * float64(batch)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	c.verify[k] = v
	c.mu.Unlock()
	return v, nil
}
