// Package specdec models speculative decoding (SpecInfer, the paper's
// related work [37]) on the simulated platforms. The decode phase the
// paper characterizes is memory-bound: every generated token streams all
// weights once (Figs 9–12). Verifying k draft tokens in one target pass
// streams the weights once for up to k+1 tokens, so the technique
// multiplies effective decode bandwidth by the expected accepted run
// length — an optimization that composes with the paper's AMX/HBM
// findings.
package specdec

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Run describes one speculative-decoding simulation point.
type Run struct {
	Target model.Config
	Draft  model.Config
	Setup  memsim.Config
	Batch  int
	// InputLen/OutputLen shape the request (paper default 128/32).
	InputLen, OutputLen int
	// Lookahead is the draft proposal length k.
	Lookahead int
	// Acceptance is the per-token probability that the target accepts a
	// draft token (α). SpecInfer-class systems report 0.6–0.9 for
	// well-matched draft pairs.
	Acceptance float64
}

// Result summarizes the comparison against plain greedy decoding.
type Result struct {
	BaselineTPOT  float64 // target-only seconds per output token
	SpecTPOT      float64 // speculative seconds per output token
	Speedup       float64
	TokensPerPass float64 // expected tokens committed per target pass
	DraftShare    float64 // fraction of speculative time spent drafting
}

// ExpectedTokensPerCycle returns the expected committed tokens per
// speculation cycle: accepted draft tokens plus the target's bonus token,
// E = Σ_{i=0..k-1} α^i · ... = (1-α^{k+1})/(1-α) for α<1, k+1 for α=1.
func ExpectedTokensPerCycle(alpha float64, k int) float64 {
	if alpha >= 1 {
		return float64(k + 1)
	}
	return (1 - math.Pow(alpha, float64(k+1))) / (1 - alpha)
}

// Simulate prices the run.
func (r Run) Simulate() (Result, error) {
	if err := r.validate(); err != nil {
		return Result{}, err
	}
	// Per-step decode costs of target and draft on the same platform.
	stepCost := func(m model.Config) (float64, error) {
		res, err := perfmodel.CPURun{Model: m, Setup: r.Setup, Batch: r.Batch,
			InputLen: r.InputLen, OutputLen: 2, Weights: tensor.BF16}.Simulate()
		return res.DecodeSeconds, err
	}
	targetStep, err := stepCost(r.Target)
	if err != nil {
		return Result{}, err
	}
	draftStep, err := stepCost(r.Draft)
	if err != nil {
		return Result{}, err
	}
	// Verification is one target pass over k+1 rows: weight streaming is
	// unchanged (the memory-bound term) and compute scales with rows —
	// price it as a decode step whose compute-bound ops run (k+1)×. In
	// the memory-bound regime this stays ≈ targetStep.
	verify := r.verifyCost(targetStep)

	e := ExpectedTokensPerCycle(r.Acceptance, r.Lookahead)
	cycle := float64(r.Lookahead)*draftStep + verify
	spec := cycle / e

	res := Result{
		BaselineTPOT:  targetStep,
		SpecTPOT:      spec,
		TokensPerPass: e,
		DraftShare:    float64(r.Lookahead) * draftStep / cycle,
	}
	if spec > 0 {
		res.Speedup = targetStep / spec
	}
	return res, nil
}

// verifyCost prices the (k+1)-row verification pass.
func (r Run) verifyCost(targetStep float64) float64 {
	t, err := VerifySeconds(r.Target, r.Setup, r.Batch, r.InputLen, r.Lookahead+1)
	if err != nil {
		return targetStep // conservative fallback
	}
	return t
}

// VerifySeconds prices one fused verification pass of `rows` rows over a
// single sequence at KV context ctx, with BF16 weights (the paper's
// default dtype). Per op the roofline is
//
//	max(ComputeSec·rows, WeightSec + IOSec·rows)
//
// — the weights stream exactly once regardless of the row count (that is
// the whole point of fused verification), while compute and the
// activation/KV traffic scale with the rows. An earlier version charged
// the undivided memory term unscaled, which under-priced long-context
// verification where KV reads dominate; the serving path charges this
// exact formula, so the analytic Result and live accounting reconcile.
func VerifySeconds(m model.Config, setup memsim.Config, batch, ctx, rows int) (float64, error) {
	return VerifySecondsDT(m, setup, batch, ctx, rows, tensor.BF16)
}

// VerifySecondsDT is VerifySeconds with an explicit weight dtype, for
// pricing verification on quantized (INT8) or unquantized (FP32) kernel
// tiers: the dtype scales the streamed weight bytes, which is exactly the
// term fused verification amortizes.
func VerifySecondsDT(m model.Config, setup memsim.Config, batch, ctx, rows int, dt tensor.DType) (float64, error) {
	run := perfmodel.CPURun{Model: m, Setup: setup, Batch: batch,
		InputLen: ctx, OutputLen: 2, Weights: dt}
	ops, err := run.Analyze(model.Decode, 1, ctx)
	if err != nil {
		return 0, err
	}
	rf := float64(rows)
	var t float64
	for _, o := range ops {
		compute := o.ComputeSec * rf
		mem := o.WeightSec + o.IOSec*rf
		if mem > compute {
			t += mem
		} else {
			t += compute
		}
	}
	t += setup.CPU.StepOverheadMS / 1e3
	return t, nil
}

// Adaptive picks the lookahead k from an EWMA of the observed acceptance
// rate. Speculation only pays when the draft agrees with the target often
// enough to amortize its own steps, so the controller starts optimistic at
// the configured maximum, tracks acceptance per verification cycle, and
// shrinks k — all the way to 1 when α is poor — as the estimate degrades.
// Safe for concurrent use.
type Adaptive struct {
	mu     sync.Mutex
	maxK   int
	alpha  float64
	warmed bool
}

const (
	// adaptiveEWMAWeight is the weight of the newest cycle's acceptance.
	adaptiveEWMAWeight = 0.2
	// adaptiveFloor is the acceptance below which speculation is priced as
	// pure overhead and the lookahead collapses to 1.
	adaptiveFloor = 0.3
)

// NewAdaptive returns a controller bounded by maxK (clamped to ≥ 1).
func NewAdaptive(maxK int) *Adaptive {
	if maxK < 1 {
		maxK = 1
	}
	return &Adaptive{maxK: maxK}
}

// Observe folds one verification cycle's outcome into the estimate.
func (a *Adaptive) Observe(proposed, accepted int) {
	if proposed <= 0 {
		return
	}
	rate := float64(accepted) / float64(proposed)
	a.mu.Lock()
	if !a.warmed {
		a.alpha, a.warmed = rate, true
	} else {
		a.alpha += adaptiveEWMAWeight * (rate - a.alpha)
	}
	a.mu.Unlock()
}

// Acceptance returns the current EWMA estimate (the optimistic 1.0 before
// any observation).
func (a *Adaptive) Acceptance() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.warmed {
		return 1
	}
	return a.alpha
}

// K returns the lookahead to use for the next cycle: maxK before any
// observation, 1 below the acceptance floor, and otherwise the k that
// balances expected accepted run length against drafting overhead —
// 1 + round(α/(1-α)), the mean geometric run length — clamped to
// [1, maxK].
func (a *Adaptive) K() int {
	a.mu.Lock()
	alpha, warmed := a.alpha, a.warmed
	a.mu.Unlock()
	if !warmed {
		return a.maxK
	}
	if alpha < adaptiveFloor {
		return 1
	}
	if alpha >= 1 {
		return a.maxK
	}
	k := 1 + int(alpha/(1-alpha)+0.5)
	if k > a.maxK {
		k = a.maxK
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (r Run) validate() error {
	if err := r.Target.Validate(); err != nil {
		return err
	}
	if err := r.Draft.Validate(); err != nil {
		return err
	}
	if r.Lookahead <= 0 {
		return fmt.Errorf("specdec: non-positive lookahead %d", r.Lookahead)
	}
	if r.Acceptance < 0 || r.Acceptance > 1 {
		return fmt.Errorf("specdec: acceptance %g outside [0,1]", r.Acceptance)
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("specdec: non-positive batch/input/output")
	}
	return nil
}
