// Package specdec models speculative decoding (SpecInfer, the paper's
// related work [37]) on the simulated platforms. The decode phase the
// paper characterizes is memory-bound: every generated token streams all
// weights once (Figs 9–12). Verifying k draft tokens in one target pass
// streams the weights once for up to k+1 tokens, so the technique
// multiplies effective decode bandwidth by the expected accepted run
// length — an optimization that composes with the paper's AMX/HBM
// findings.
package specdec

import (
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Run describes one speculative-decoding simulation point.
type Run struct {
	Target model.Config
	Draft  model.Config
	Setup  memsim.Config
	Batch  int
	// InputLen/OutputLen shape the request (paper default 128/32).
	InputLen, OutputLen int
	// Lookahead is the draft proposal length k.
	Lookahead int
	// Acceptance is the per-token probability that the target accepts a
	// draft token (α). SpecInfer-class systems report 0.6–0.9 for
	// well-matched draft pairs.
	Acceptance float64
}

// Result summarizes the comparison against plain greedy decoding.
type Result struct {
	BaselineTPOT  float64 // target-only seconds per output token
	SpecTPOT      float64 // speculative seconds per output token
	Speedup       float64
	TokensPerPass float64 // expected tokens committed per target pass
	DraftShare    float64 // fraction of speculative time spent drafting
}

// ExpectedTokensPerCycle returns the expected committed tokens per
// speculation cycle: accepted draft tokens plus the target's bonus token,
// E = Σ_{i=0..k-1} α^i · ... = (1-α^{k+1})/(1-α) for α<1, k+1 for α=1.
func ExpectedTokensPerCycle(alpha float64, k int) float64 {
	if alpha >= 1 {
		return float64(k + 1)
	}
	return (1 - math.Pow(alpha, float64(k+1))) / (1 - alpha)
}

// Simulate prices the run.
func (r Run) Simulate() (Result, error) {
	if err := r.validate(); err != nil {
		return Result{}, err
	}
	// Per-step decode costs of target and draft on the same platform.
	stepCost := func(m model.Config) (float64, error) {
		res, err := perfmodel.CPURun{Model: m, Setup: r.Setup, Batch: r.Batch,
			InputLen: r.InputLen, OutputLen: 2, Weights: tensor.BF16}.Simulate()
		return res.DecodeSeconds, err
	}
	targetStep, err := stepCost(r.Target)
	if err != nil {
		return Result{}, err
	}
	draftStep, err := stepCost(r.Draft)
	if err != nil {
		return Result{}, err
	}
	// Verification is one target pass over k+1 rows: weight streaming is
	// unchanged (the memory-bound term) and compute scales with rows —
	// price it as a decode step whose compute-bound ops run (k+1)×. In
	// the memory-bound regime this stays ≈ targetStep.
	verify := r.verifyCost(targetStep)

	e := ExpectedTokensPerCycle(r.Acceptance, r.Lookahead)
	cycle := float64(r.Lookahead)*draftStep + verify
	spec := cycle / e

	res := Result{
		BaselineTPOT:  targetStep,
		SpecTPOT:      spec,
		TokensPerPass: e,
		DraftShare:    float64(r.Lookahead) * draftStep / cycle,
	}
	if spec > 0 {
		res.Speedup = targetStep / spec
	}
	return res, nil
}

// verifyCost prices the (k+1)-row verification pass: per-op roofline with
// the compute term scaled by the row count and the memory term unchanged.
func (r Run) verifyCost(targetStep float64) float64 {
	run := perfmodel.CPURun{Model: r.Target, Setup: r.Setup, Batch: r.Batch,
		InputLen: r.InputLen, OutputLen: 2, Weights: tensor.BF16}
	ops, err := run.Analyze(model.Decode, 1, r.InputLen)
	if err != nil {
		return targetStep // conservative fallback
	}
	rows := float64(r.Lookahead + 1)
	var t float64
	for _, o := range ops {
		compute := o.ComputeSec * rows
		if o.MemorySec > compute {
			t += o.MemorySec
		} else {
			t += compute
		}
	}
	t += r.Setup.CPU.StepOverheadMS / 1e3
	return t
}

func (r Run) validate() error {
	if err := r.Target.Validate(); err != nil {
		return err
	}
	if err := r.Draft.Validate(); err != nil {
		return err
	}
	if r.Lookahead <= 0 {
		return fmt.Errorf("specdec: non-positive lookahead %d", r.Lookahead)
	}
	if r.Acceptance < 0 || r.Acceptance > 1 {
		return fmt.Errorf("specdec: acceptance %g outside [0,1]", r.Acceptance)
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("specdec: non-positive batch/input/output")
	}
	return nil
}
