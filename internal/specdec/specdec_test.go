package specdec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
)

func run(alpha float64, k int) Run {
	return Run{
		Target: model.OPT13B, Draft: model.OPT1B3,
		Setup: memsim.Config{CPU: hw.SPRMax9468, Cores: 48,
			Mem: memsim.Flat, Cluster: memsim.Quad},
		Batch: 1, InputLen: 128, OutputLen: 32,
		Lookahead: k, Acceptance: alpha,
	}
}

func TestExpectedTokensPerCycle(t *testing.T) {
	if ExpectedTokensPerCycle(0, 4) != 1 {
		t.Error("zero acceptance must yield exactly the bonus token")
	}
	if ExpectedTokensPerCycle(1, 4) != 5 {
		t.Error("perfect acceptance must yield k+1 tokens")
	}
	got := ExpectedTokensPerCycle(0.5, 2) // 1 + 0.5 + 0.25
	if math.Abs(got-1.75) > 1e-12 {
		t.Errorf("E(0.5, 2) = %v, want 1.75", got)
	}
	// Monotone in both α and k.
	if ExpectedTokensPerCycle(0.6, 4) >= ExpectedTokensPerCycle(0.8, 4) {
		t.Error("E must grow with acceptance")
	}
	if ExpectedTokensPerCycle(0.8, 2) >= ExpectedTokensPerCycle(0.8, 6) {
		t.Error("E must grow with lookahead")
	}
}

// TestSpeculationSpeedsUpMemoryBoundDecode: with a 10× smaller draft and
// realistic acceptance, speculative decoding must beat plain decoding on
// the memory-bound CPU.
func TestSpeculationSpeedsUpMemoryBoundDecode(t *testing.T) {
	res, err := run(0.8, 4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.2 {
		t.Errorf("speedup = %.2f, want > 1.2 (α=0.8, k=4, 10x draft)", res.Speedup)
	}
	if res.Speedup > float64(5) {
		t.Errorf("speedup = %.2f implausibly high for k=4", res.Speedup)
	}
	if res.TokensPerPass <= 1 || res.DraftShare <= 0 || res.DraftShare >= 1 {
		t.Errorf("degenerate result: %+v", res)
	}
}

// TestZeroAcceptanceHurts: a useless draft makes speculation strictly
// slower than the baseline (pure overhead).
func TestZeroAcceptanceHurts(t *testing.T) {
	res, err := run(0, 4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup >= 1 {
		t.Errorf("zero acceptance must slow decoding (speedup %.2f)", res.Speedup)
	}
}

// TestSpeedupMonotoneInAcceptance: more acceptance, more speedup.
func TestSpeedupMonotoneInAcceptance(t *testing.T) {
	prev := 0.0
	for _, a := range []float64{0.2, 0.5, 0.8, 0.95} {
		res, err := run(a, 4).Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if res.Speedup <= prev {
			t.Errorf("speedup not monotone at α=%.2f: %.2f ≤ %.2f", a, res.Speedup, prev)
		}
		prev = res.Speedup
	}
}

// TestVerifyNearOneStep: in the memory-bound regime, verifying k+1 rows
// must cost only slightly more than one decode step.
func TestVerifyNearOneStep(t *testing.T) {
	r := run(0.8, 4)
	res, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	verify := r.verifyCost(res.BaselineTPOT)
	if verify > 1.5*res.BaselineTPOT {
		t.Errorf("verify pass %.1fms vs step %.1fms — should be near-free",
			verify*1e3, res.BaselineTPOT*1e3)
	}
	if verify < res.BaselineTPOT*0.9 {
		t.Errorf("verify pass cheaper than a decode step: %.1fms vs %.1fms",
			verify*1e3, res.BaselineTPOT*1e3)
	}
}

// TestLiveAccountingWithinAnalyticBound is the reconciliation property:
// the cycle the live serving path charges (k draft steps + one fused
// (k+1)-row verification pass) must reproduce the analytic SpecTPOT
// exactly, and the verification pass itself must stay within its physical
// bounds — at least one decode step (the weights stream once no matter
// what) and strictly cheaper than k+1 independent steps (or fused
// verification would be pointless).
func TestLiveAccountingWithinAnalyticBound(t *testing.T) {
	prop := func(a8, k8 uint8) bool {
		alpha := float64(a8) / 255
		k := 1 + int(k8%6)
		r := run(alpha, k)
		res, err := r.Simulate()
		if err != nil {
			return false
		}
		draftRun := r
		draftRun.Target = r.Draft
		dres, err := draftRun.Simulate()
		if err != nil {
			return false
		}
		verify, err := VerifySeconds(r.Target, r.Setup, r.Batch, r.InputLen, k+1)
		if err != nil {
			return false
		}
		// Physical bounds on the fused pass.
		if verify < res.BaselineTPOT*0.9 {
			t.Logf("verify %.3fms below one step %.3fms", verify*1e3, res.BaselineTPOT*1e3)
			return false
		}
		if verify > float64(k+1)*res.BaselineTPOT*1.01 {
			t.Logf("verify %.3fms above %d unfused steps", verify*1e3, k+1)
			return false
		}
		// Reconciliation: live cycle accounting == analytic TPOT.
		cycle := float64(k)*dres.BaselineTPOT + verify
		want := cycle / ExpectedTokensPerCycle(alpha, k)
		return math.Abs(res.SpecTPOT-want) <= 1e-12*math.Max(1, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyScalesWithContext: at long KV contexts the per-row KV reads
// matter, so a (k+1)-row verification must cost measurably more than at a
// short context — the regression the WeightSec/IOSec split fixed (the old
// formula charged the undivided memory term once, independent of rows).
func TestVerifyScalesWithContext(t *testing.T) {
	r := run(0.8, 4)
	short, err := VerifySeconds(r.Target, r.Setup, r.Batch, 128, 5)
	if err != nil {
		t.Fatal(err)
	}
	long, err := VerifySeconds(r.Target, r.Setup, r.Batch, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	if long <= short {
		t.Errorf("verify at ctx=4096 (%.3fms) not above ctx=128 (%.3fms)", long*1e3, short*1e3)
	}
	one, err := VerifySeconds(r.Target, r.Setup, r.Batch, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if long <= one {
		t.Errorf("5-row verify (%.3fms) not above 1-row (%.3fms) at long context", long*1e3, one*1e3)
	}
}

func TestAdaptiveLookahead(t *testing.T) {
	a := NewAdaptive(8)
	if a.K() != 8 {
		t.Errorf("unwarmed K = %d, want optimistic max 8", a.K())
	}
	if a.Acceptance() != 1 {
		t.Errorf("unwarmed acceptance = %g, want 1", a.Acceptance())
	}
	// Sustained poor acceptance collapses the lookahead to 1.
	for i := 0; i < 50; i++ {
		a.Observe(8, 0)
	}
	if a.K() != 1 {
		t.Errorf("K after zero acceptance = %d, want 1", a.K())
	}
	// Sustained good acceptance grows it back toward the cap.
	for i := 0; i < 50; i++ {
		a.Observe(8, 8)
	}
	if a.K() != 8 {
		t.Errorf("K after perfect acceptance = %d, want 8", a.K())
	}
	// Mid acceptance lands strictly between.
	b := NewAdaptive(8)
	for i := 0; i < 50; i++ {
		b.Observe(10, 7)
	}
	if k := b.K(); k < 2 || k > 5 {
		t.Errorf("K at α≈0.7 = %d, want in [2,5]", k)
	}
	if math.Abs(b.Acceptance()-0.7) > 0.02 {
		t.Errorf("EWMA acceptance = %g, want ≈ 0.7", b.Acceptance())
	}
	// Observing nothing changes nothing.
	prev := b.K()
	b.Observe(0, 0)
	if b.K() != prev {
		t.Errorf("Observe(0,0) moved K from %d to %d", prev, b.K())
	}
}

func TestValidation(t *testing.T) {
	r := run(0.8, 0)
	if _, err := r.Simulate(); err == nil {
		t.Error("zero lookahead must fail")
	}
	r = run(1.5, 2)
	if _, err := r.Simulate(); err == nil {
		t.Error("acceptance > 1 must fail")
	}
	r = run(0.8, 2)
	r.Batch = 0
	if _, err := r.Simulate(); err == nil {
		t.Error("zero batch must fail")
	}
	r = run(0.8, 2)
	r.Draft = model.Config{Name: "bad"}
	if _, err := r.Simulate(); err == nil {
		t.Error("invalid draft must fail")
	}
}
