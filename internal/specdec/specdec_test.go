package specdec

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
)

func run(alpha float64, k int) Run {
	return Run{
		Target: model.OPT13B, Draft: model.OPT1B3,
		Setup: memsim.Config{CPU: hw.SPRMax9468, Cores: 48,
			Mem: memsim.Flat, Cluster: memsim.Quad},
		Batch: 1, InputLen: 128, OutputLen: 32,
		Lookahead: k, Acceptance: alpha,
	}
}

func TestExpectedTokensPerCycle(t *testing.T) {
	if ExpectedTokensPerCycle(0, 4) != 1 {
		t.Error("zero acceptance must yield exactly the bonus token")
	}
	if ExpectedTokensPerCycle(1, 4) != 5 {
		t.Error("perfect acceptance must yield k+1 tokens")
	}
	got := ExpectedTokensPerCycle(0.5, 2) // 1 + 0.5 + 0.25
	if math.Abs(got-1.75) > 1e-12 {
		t.Errorf("E(0.5, 2) = %v, want 1.75", got)
	}
	// Monotone in both α and k.
	if ExpectedTokensPerCycle(0.6, 4) >= ExpectedTokensPerCycle(0.8, 4) {
		t.Error("E must grow with acceptance")
	}
	if ExpectedTokensPerCycle(0.8, 2) >= ExpectedTokensPerCycle(0.8, 6) {
		t.Error("E must grow with lookahead")
	}
}

// TestSpeculationSpeedsUpMemoryBoundDecode: with a 10× smaller draft and
// realistic acceptance, speculative decoding must beat plain decoding on
// the memory-bound CPU.
func TestSpeculationSpeedsUpMemoryBoundDecode(t *testing.T) {
	res, err := run(0.8, 4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.2 {
		t.Errorf("speedup = %.2f, want > 1.2 (α=0.8, k=4, 10x draft)", res.Speedup)
	}
	if res.Speedup > float64(5) {
		t.Errorf("speedup = %.2f implausibly high for k=4", res.Speedup)
	}
	if res.TokensPerPass <= 1 || res.DraftShare <= 0 || res.DraftShare >= 1 {
		t.Errorf("degenerate result: %+v", res)
	}
}

// TestZeroAcceptanceHurts: a useless draft makes speculation strictly
// slower than the baseline (pure overhead).
func TestZeroAcceptanceHurts(t *testing.T) {
	res, err := run(0, 4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup >= 1 {
		t.Errorf("zero acceptance must slow decoding (speedup %.2f)", res.Speedup)
	}
}

// TestSpeedupMonotoneInAcceptance: more acceptance, more speedup.
func TestSpeedupMonotoneInAcceptance(t *testing.T) {
	prev := 0.0
	for _, a := range []float64{0.2, 0.5, 0.8, 0.95} {
		res, err := run(a, 4).Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if res.Speedup <= prev {
			t.Errorf("speedup not monotone at α=%.2f: %.2f ≤ %.2f", a, res.Speedup, prev)
		}
		prev = res.Speedup
	}
}

// TestVerifyNearOneStep: in the memory-bound regime, verifying k+1 rows
// must cost only slightly more than one decode step.
func TestVerifyNearOneStep(t *testing.T) {
	r := run(0.8, 4)
	res, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	verify := r.verifyCost(res.BaselineTPOT)
	if verify > 1.5*res.BaselineTPOT {
		t.Errorf("verify pass %.1fms vs step %.1fms — should be near-free",
			verify*1e3, res.BaselineTPOT*1e3)
	}
	if verify < res.BaselineTPOT*0.9 {
		t.Errorf("verify pass cheaper than a decode step: %.1fms vs %.1fms",
			verify*1e3, res.BaselineTPOT*1e3)
	}
}

func TestValidation(t *testing.T) {
	r := run(0.8, 0)
	if _, err := r.Simulate(); err == nil {
		t.Error("zero lookahead must fail")
	}
	r = run(1.5, 2)
	if _, err := r.Simulate(); err == nil {
		t.Error("acceptance > 1 must fail")
	}
	r = run(0.8, 2)
	r.Batch = 0
	if _, err := r.Simulate(); err == nil {
		t.Error("zero batch must fail")
	}
	r = run(0.8, 2)
	r.Draft = model.Config{Name: "bad"}
	if _, err := r.Simulate(); err == nil {
		t.Error("invalid draft must fail")
	}
}
