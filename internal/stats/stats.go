// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate and normalize results the way the paper's
// figures do (normalize-to-baseline bars, averages across workloads).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive;
// it returns 0 for an empty slice. Speedup ratios are averaged
// geometrically.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean of non-positive value %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min and Max return the extrema of a non-empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of a non-empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it, or 0 when empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Normalize divides each element by base, reproducing the paper's
// "normalized to X" bars. A zero base yields an error.
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, fmt.Errorf("stats: normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}

// Speedup returns baseline/improved, the latency speedup convention.
func Speedup(baseline, improved float64) float64 {
	if improved == 0 {
		return math.Inf(1)
	}
	return baseline / improved
}

// ReductionPercent returns the percentage reduction from baseline to
// improved, the paper's "−84.1 %" convention.
func ReductionPercent(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (1 - improved/baseline) * 100
}
