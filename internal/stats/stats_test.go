package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative value must error")
	}
	if g, err := GeoMean(nil); g != 0 || err != nil {
		t.Error("empty geomean must be 0, nil")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 3}
	if Min(xs) != 1 || Max(xs) != 5 || Median(xs) != 3 {
		t.Error("min/max/median wrong")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median must be 0")
	}
	// Median must not mutate its input.
	if xs[0] != 5 {
		t.Error("median mutated input")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4}, 2)
	if err != nil || out[0] != 1 || out[1] != 2 {
		t.Errorf("normalize = %v, %v", out, err)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("normalize by zero must error")
	}
}

func TestSpeedupReduction(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("speedup by zero must be +Inf")
	}
	if ReductionPercent(10, 2) != 80 {
		t.Error("reduction wrong")
	}
	if ReductionPercent(0, 5) != 0 {
		t.Error("zero baseline reduction must be 0")
	}
}
