// Package sweeprun runs parameter sweeps over (platform, model, batch,
// input length) grids and renders them as CSV — the engine behind
// cmd/sweep, factored out so the grid logic is testable.
package sweeprun

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Grid is a sweep specification.
type Grid struct {
	Platforms []string // spr | icl | a100 | h100
	Models    []core.Model
	Batches   []int
	Inputs    []int
	Output    int
}

// Validate reports empty or malformed grids.
func (g Grid) Validate() error {
	if len(g.Platforms) == 0 || len(g.Models) == 0 || len(g.Batches) == 0 ||
		len(g.Inputs) == 0 || g.Output <= 0 {
		return fmt.Errorf("sweeprun: empty grid dimension")
	}
	for _, p := range g.Platforms {
		switch p {
		case "spr", "icl", "a100", "h100":
		default:
			return fmt.Errorf("sweeprun: unknown platform %q", p)
		}
	}
	return nil
}

// Row is one sweep point's outcome. Err is set when the point could not
// be simulated (e.g. a working set beyond host memory) — the sweep
// continues past it.
type Row struct {
	Platform string
	Model    string
	Batch    int
	Input    int
	Result   metrics.Result
	Err      error
}

// Simulate prices one point on a named platform.
func Simulate(platform string, m core.Model, batch, in, out int) (core.Result, error) {
	switch platform {
	case "spr":
		return core.SimulateCPU(core.SPRQuadFlat(48), m, batch, in, out)
	case "icl":
		return core.SimulateCPU(core.ICLBaseline(), m, batch, in, out)
	case "a100":
		return core.SimulateGPU(core.A100(), m, batch, in, out)
	case "h100":
		return core.SimulateGPU(core.H100(), m, batch, in, out)
	default:
		return core.Result{}, fmt.Errorf("sweeprun: unknown platform %q", platform)
	}
}

// Run evaluates the whole grid in row-major order (inputs fastest).
func Run(g Grid) ([]Row, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	var rows []Row
	for _, p := range g.Platforms {
		for _, m := range g.Models {
			for _, b := range g.Batches {
				for _, in := range g.Inputs {
					res, err := Simulate(p, m, b, in, g.Output)
					rows = append(rows, Row{
						Platform: p, Model: m.Name, Batch: b, Input: in,
						Result: res, Err: err,
					})
				}
			}
		}
	}
	return rows, nil
}

// Header is the CSV column list WriteCSV emits.
var Header = []string{"platform", "model", "batch", "input", "output",
	"ttft_ms", "tpot_ms", "e2e_s", "prefill_tok_s", "decode_tok_s",
	"e2e_tok_s", "pcie_fraction"}

// WriteCSV renders successful rows as CSV (failed rows are skipped; the
// caller can report them via the returned count).
func WriteCSV(w io.Writer, output int, rows []Row) (skipped int, err error) {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(Header); err != nil {
		return 0, err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, r := range rows {
		if r.Err != nil {
			skipped++
			continue
		}
		rec := []string{
			r.Platform, r.Model,
			strconv.Itoa(r.Batch), strconv.Itoa(r.Input), strconv.Itoa(output),
			f(r.Result.Latency.TTFT * 1e3), f(r.Result.Latency.TPOT * 1e3),
			f(r.Result.Latency.E2E),
			f(r.Result.Throughput.Prefill), f(r.Result.Throughput.Decode),
			f(r.Result.Throughput.E2E), f(r.Result.PCIeFraction()),
		}
		if err := cw.Write(rec); err != nil {
			return skipped, err
		}
	}
	cw.Flush()
	return skipped, cw.Error()
}
