package sweeprun

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"repro/internal/core"
)

func grid() Grid {
	return Grid{
		Platforms: []string{"spr", "h100"},
		Models:    []core.Model{core.MustModel("OPT-13B"), core.MustModel("OPT-66B")},
		Batches:   []int{1, 8},
		Inputs:    []int{128, 512},
		Output:    32,
	}
}

func TestRunGridShape(t *testing.T) {
	rows, err := Run(grid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*2*2 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	// Row-major ordering: inputs vary fastest.
	if rows[0].Input != 128 || rows[1].Input != 512 {
		t.Error("ordering wrong")
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s/%s b=%d in=%d failed: %v", r.Platform, r.Model, r.Batch, r.Input, r.Err)
			continue
		}
		if r.Result.Throughput.E2E <= 0 {
			t.Errorf("degenerate point %+v", r)
		}
	}
}

func TestGridValidation(t *testing.T) {
	bad := grid()
	bad.Platforms = nil
	if _, err := Run(bad); err == nil {
		t.Error("empty platforms must fail")
	}
	bad = grid()
	bad.Platforms = []string{"tpu"}
	if _, err := Run(bad); err == nil {
		t.Error("unknown platform must fail")
	}
	bad = grid()
	bad.Output = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero output must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	rows, err := Run(grid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	skipped, err := WriteCSV(&buf, 32, rows)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d rows", skipped)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rows)+1 {
		t.Fatalf("CSV has %d records, want %d", len(recs), len(rows)+1)
	}
	if len(recs[0]) != len(Header) {
		t.Error("header width wrong")
	}
	// Numeric fields parse.
	for _, rec := range recs[1:] {
		for col := 5; col < len(rec); col++ {
			if _, err := strconv.ParseFloat(rec[col], 64); err != nil {
				t.Fatalf("column %d = %q not numeric", col, rec[col])
			}
		}
	}
}

func TestWriteCSVSkipsFailedRows(t *testing.T) {
	rows := []Row{{Platform: "spr", Model: "x", Err: errFake}}
	var buf bytes.Buffer
	skipped, err := WriteCSV(&buf, 32, rows)
	if err != nil || skipped != 1 {
		t.Errorf("skipped=%d err=%v", skipped, err)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestSimulateUnknownPlatform(t *testing.T) {
	if _, err := Simulate("tpu", core.MustModel("OPT-13B"), 1, 128, 32); err == nil {
		t.Error("unknown platform must fail")
	}
}
