package tensor

import "math"

// BFloat16 is a software bfloat16 value: the upper 16 bits of an IEEE-754
// binary32. Conversions use round-to-nearest-even, matching the behaviour
// of Intel AMX/AVX512-BF16 conversion instructions (VCVTNE2PS2BF16).
type BFloat16 uint16

// ToBF16 converts an FP32 value to bfloat16 with round-to-nearest-even.
// NaN payloads are quieted so that the result is still NaN after
// truncation.
func ToBF16(f float32) BFloat16 {
	bits := math.Float32bits(f)
	if f != f { // NaN: force a quiet NaN that survives truncation.
		return BFloat16(bits>>16 | 0x0040)
	}
	// Round to nearest even on the truncated 16 bits.
	rounding := uint32(0x7fff + (bits>>16)&1)
	return BFloat16((bits + rounding) >> 16)
}

// Float32 widens a bfloat16 back to FP32 exactly (the mapping is lossless).
func (b BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// RoundBF16 round-trips an FP32 value through bfloat16, yielding the value
// an AMX tile would actually hold. Kernels use it to emulate BF16 inputs
// while accumulating in FP32, exactly as TMUL does.
func RoundBF16(f float32) float32 {
	return ToBF16(f).Float32()
}

// ToBF16Slice converts src to a freshly allocated bfloat16 slice.
func ToBF16Slice(src []float32) []BFloat16 {
	dst := make([]BFloat16, len(src))
	for i, v := range src {
		dst[i] = ToBF16(v)
	}
	return dst
}

// FromBF16Slice widens src to a freshly allocated float32 slice.
func FromBF16Slice(src []BFloat16) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}

// QuantizeInt8 quantizes src symmetrically to int8 with a single
// per-tensor scale, returning the quantized values and the scale such that
// src[i] ~= scale * q[i]. A zero tensor gets scale 1 to keep dequantization
// well-defined.
func QuantizeInt8(src []float32) (q []int8, scale float32) {
	q = make([]int8, len(src))
	scale = QuantizeInt8Into(q, src)
	return q, scale
}

// QuantizeInt8Into quantizes src into the caller-provided dst (which must
// be at least len(src) long), returning the per-tensor scale. It is the
// allocation-free variant of QuantizeInt8 used by the decode hot path,
// where activations are re-quantized every token into arena scratch.
func QuantizeInt8Into(dst []int8, src []float32) (scale float32) {
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range src {
			dst[i] = 0
		}
		return 1
	}
	scale = maxAbs / 127
	inv := 1 / scale
	for i, v := range src {
		r := v * inv
		// Round half away from zero, as VNNI/AMX quantization pipelines do.
		if r >= 0 {
			r += 0.5
		} else {
			r -= 0.5
		}
		n := int32(r)
		if n > 127 {
			n = 127
		} else if n < -127 {
			n = -127
		}
		dst[i] = int8(n)
	}
	return scale
}

// DequantizeInt8 expands q back to float32 using scale.
func DequantizeInt8(q []int8, scale float32) []float32 {
	dst := make([]float32, len(q))
	for i, v := range q {
		dst[i] = float32(v) * scale
	}
	return dst
}
