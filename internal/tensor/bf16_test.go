package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBF16ExactValues(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{1, 1},
		{-1, -1},
		{0.5, 0.5},
		{2, 2},
		{256, 256},
		{1.0 / 3.0, 0.33398438}, // nearest bf16 to 1/3
	}
	for _, c := range cases {
		got := RoundBF16(c.in)
		if got != c.want {
			t.Errorf("RoundBF16(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBF16RoundTripExactForBF16Values(t *testing.T) {
	// Any value already representable in bf16 must round-trip exactly.
	for bits := 0; bits < 1<<16; bits++ {
		b := BFloat16(bits)
		f := b.Float32()
		if f != f { // skip NaN: compared by bit pattern below
			back := ToBF16(f)
			if back.Float32() != back.Float32() {
				continue // NaN preserved as NaN
			}
			t.Fatalf("NaN %#04x did not round-trip to NaN", bits)
		}
		if math.IsInf(float64(f), 0) {
			if got := ToBF16(f); got != b {
				t.Fatalf("Inf %#04x -> %#04x", bits, got)
			}
			continue
		}
		if got := ToBF16(f); got != b {
			t.Fatalf("bf16 %#04x (%v) round-tripped to %#04x", bits, f, got)
		}
	}
}

func TestBF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-8 is exactly halfway between 1.0 and the next bf16 value
	// (1 + 2^-7); ties go to even mantissa, i.e. 1.0.
	half := float32(1 + 1.0/256)
	if got := RoundBF16(half); got != 1.0 {
		t.Errorf("halfway value rounded to %v, want 1.0 (ties-to-even)", got)
	}
	// 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; even is 1+2^-6.
	half2 := float32(1 + 3.0/256)
	if got := RoundBF16(half2); got != float32(1+1.0/64) {
		t.Errorf("halfway value rounded to %v, want %v", got, 1+1.0/64)
	}
}

func TestBF16Monotone(t *testing.T) {
	// Property: conversion preserves ordering (weakly).
	f := func(a, b float32) bool {
		if a != a || b != b || math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		if a <= b {
			return RoundBF16(a) <= RoundBF16(b)
		}
		return RoundBF16(a) >= RoundBF16(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBF16RelativeError(t *testing.T) {
	// Property: for normal floats, relative error is bounded by 2^-8.
	f := func(a float32) bool {
		if a != a || math.IsInf(float64(a), 0) {
			return true
		}
		if abs := math.Abs(float64(a)); abs < 1e-30 || abs > 1e30 {
			return true // avoid subnormal edge cases
		}
		r := RoundBF16(a)
		rel := math.Abs(float64(r-a)) / math.Abs(float64(a))
		return rel <= 1.0/256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBF16SliceRoundTrip(t *testing.T) {
	src := []float32{0, 1, -2.5, 3.25, 1e10, -1e-10}
	got := FromBF16Slice(ToBF16Slice(src))
	for i := range src {
		if RoundBF16(src[i]) != got[i] {
			t.Errorf("index %d: got %v, want %v", i, got[i], RoundBF16(src[i]))
		}
	}
}

func TestQuantizeInt8RoundTrip(t *testing.T) {
	src := []float32{0, 0.5, -0.5, 1, -1, 0.25}
	q, scale := QuantizeInt8(src)
	back := DequantizeInt8(q, scale)
	for i := range src {
		if math.Abs(float64(back[i]-src[i])) > float64(scale)/2+1e-7 {
			t.Errorf("index %d: %v -> %v (scale %v)", i, src[i], back[i], scale)
		}
	}
}

func TestQuantizeInt8Zero(t *testing.T) {
	q, scale := QuantizeInt8(make([]float32, 8))
	if scale != 1 {
		t.Errorf("zero tensor scale = %v, want 1", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Errorf("zero tensor quantized to %v", q)
			break
		}
	}
}

func TestQuantizeInt8ErrorBound(t *testing.T) {
	// Property: quantization error never exceeds half a quantization step.
	f := func(vals []float32) bool {
		for _, v := range vals {
			if v != v || math.IsInf(float64(v), 0) {
				return true
			}
		}
		q, scale := QuantizeInt8(vals)
		back := DequantizeInt8(q, scale)
		for i := range vals {
			if math.Abs(float64(back[i]-vals[i])) > float64(scale)*0.5000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDTypeSizes(t *testing.T) {
	if FP32.Size() != 4 || FP16.Size() != 2 || BF16.Size() != 2 || INT8.Size() != 1 {
		t.Error("dtype sizes wrong")
	}
	if BF16.String() != "bf16" || INT8.String() != "int8" || FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Error("dtype names wrong")
	}
}
