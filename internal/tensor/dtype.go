// Package tensor provides the numeric foundation for the functional
// inference engine: data types (FP32, BF16, FP16 sizing, INT8), a software
// implementation of bfloat16 with round-to-nearest-even semantics matching
// Intel AMX tile inputs, and a small dense tensor type used by the kernels
// and the transformer engine.
package tensor

import "fmt"

// DType identifies a numeric element type. The simulator uses DTypes for
// footprint arithmetic; the functional engine uses them to select storage
// and kernel paths.
type DType int

const (
	// FP32 is IEEE-754 binary32, the accumulate type of AMX TMUL.
	FP32 DType = iota
	// FP16 is IEEE-754 binary16. The engine does not compute in FP16, but
	// the paper sizes model footprints in FP16 (Fig 6), so it participates
	// in sizing arithmetic.
	FP16
	// BF16 is bfloat16: 1 sign, 8 exponent, 7 mantissa bits. It is the
	// primary AMX input type and the dtype used for all inference
	// experiments in the paper.
	BF16
	// INT8 is a signed 8-bit integer with a per-tensor scale, the second
	// AMX TMUL input type.
	INT8
)

// Size returns the size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case FP32:
		return 4
	case FP16, BF16:
		return 2
	case INT8:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String returns the conventional lowercase name of the dtype.
func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}
