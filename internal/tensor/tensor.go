package tensor

import "fmt"

// Tensor is a dense row-major FP32 tensor. The functional engine computes
// in FP32 (the AMX accumulate type); weights may additionally carry a BF16
// or INT8 shadow representation produced by Compress, which kernels use to
// emulate reduced-precision inputs.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing row-major float32 slice.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Row returns row i of a rank-2 tensor as a slice sharing storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	w := t.shape[1]
	return t.data[i*w : (i+1)*w]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Reshape returns a tensor sharing storage with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Bytes returns the storage footprint of the tensor if stored as dt.
func (t *Tensor) Bytes(dt DType) int64 {
	return int64(len(t.data)) * int64(dt.Size())
}
