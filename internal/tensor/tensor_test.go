package tensor

import "testing"

func TestNewAndIndexing(t *testing.T) {
	m := New(2, 3)
	if m.Rank() != 2 || m.Dim(0) != 2 || m.Dim(1) != 3 || m.Len() != 6 {
		t.Fatalf("bad shape: %v", m.Shape())
	}
	m.Set(5, 1, 2)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	if m.Data()[5] != 5 {
		t.Errorf("row-major layout violated: %v", m.Data())
	}
}

func TestFromSliceSharesStorage(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromSlice(data, 2, 2)
	data[3] = 9
	if m.At(1, 1) != 9 {
		t.Error("FromSlice must not copy")
	}
}

func TestRow(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := m.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	r[0] = 40
	if m.At(1, 0) != 40 {
		t.Error("Row must share storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice([]float32{1, 2}, 2)
	c := m.Clone()
	c.Set(9, 0)
	if m.At(0) != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	m := New(2, 3)
	r := m.Reshape(3, 2)
	r.Set(7, 2, 1)
	if m.At(1, 2) != 7 {
		t.Error("Reshape must share storage")
	}
}

func TestFill(t *testing.T) {
	m := New(4)
	m.Fill(2.5)
	for i := 0; i < 4; i++ {
		if m.At(i) != 2.5 {
			t.Fatalf("Fill failed at %d", i)
		}
	}
}

func TestBytes(t *testing.T) {
	m := New(10, 10)
	if m.Bytes(BF16) != 200 || m.Bytes(FP32) != 400 || m.Bytes(INT8) != 100 {
		t.Error("Bytes wrong")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad shape", func() { New(0, 2) })
	mustPanic("bad FromSlice", func() { FromSlice([]float32{1}, 2) })
	mustPanic("bad index count", func() { New(2, 2).At(1) })
	mustPanic("index out of range", func() { New(2, 2).At(2, 0) })
	mustPanic("bad reshape", func() { New(2, 2).Reshape(3) })
	mustPanic("row of rank-1", func() { New(4).Row(0) })
}
