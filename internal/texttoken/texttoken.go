// Package texttoken is a minimal printable-ASCII tokenizer for the
// functional engine's demos and tests: one token per printable character
// (space through tilde, 95 symbols) plus BOS and EOS. Its vocabulary size
// (97) matches model.Tiny's, so tiny engines can round-trip real text.
package texttoken

import (
	"fmt"
	"strings"
)

const (
	// BOS and EOS are the sentinel tokens.
	BOS = 0
	EOS = 1
	// offset maps byte ' ' (0x20) to token 2.
	offset    = 2
	firstChar = ' '
	lastChar  = '~'
)

// VocabSize is the tokenizer's vocabulary size (95 printable ASCII + 2).
const VocabSize = int(lastChar-firstChar) + 1 + offset

// Encode converts printable-ASCII text to tokens, prepending BOS. It
// rejects characters outside the printable range.
func Encode(text string) ([]int, error) {
	toks := make([]int, 0, len(text)+1)
	toks = append(toks, BOS)
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c < firstChar || c > lastChar {
			return nil, fmt.Errorf("texttoken: non-printable byte %#x at %d", c, i)
		}
		toks = append(toks, int(c-firstChar)+offset)
	}
	return toks, nil
}

// Decode converts tokens back to text, stopping at EOS and skipping BOS.
func Decode(toks []int) (string, error) {
	var b strings.Builder
	for i, t := range toks {
		switch {
		case t == BOS:
			continue
		case t == EOS:
			return b.String(), nil
		case t >= offset && t < VocabSize:
			b.WriteByte(byte(t-offset) + firstChar)
		default:
			return "", fmt.Errorf("texttoken: token %d at %d outside vocab %d", t, i, VocabSize)
		}
	}
	return b.String(), nil
}
