package texttoken

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestVocabMatchesTiny(t *testing.T) {
	if VocabSize != model.Tiny(model.OPT).Vocab {
		t.Errorf("tokenizer vocab %d != tiny model vocab %d",
			VocabSize, model.Tiny(model.OPT).Vocab)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, s := range []string{"", "hello, world!", "The 5 CPUs ~ 3x cheaper."} {
		toks, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if toks[0] != BOS {
			t.Fatal("missing BOS")
		}
		got, err := Decode(toks)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip: %q -> %q", s, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Clamp to printable range.
		bs := make([]byte, len(raw))
		for i, b := range raw {
			bs[i] = ' ' + b%95
		}
		s := string(bs)
		toks, err := Encode(s)
		if err != nil {
			return false
		}
		got, err := Decode(toks)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEOSStops(t *testing.T) {
	toks, _ := Encode("abc")
	toks = append(toks[:2], append([]int{EOS}, toks[2:]...)...)
	got, err := Decode(toks)
	if err != nil || got != "a" {
		t.Errorf("EOS handling: %q, %v", got, err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Encode("tab\tchar"); err == nil {
		t.Error("non-printable input must fail")
	}
	if _, err := Decode([]int{999}); err == nil {
		t.Error("out-of-vocab token must fail")
	}
	if _, err := Decode([]int{-1}); err == nil {
		t.Error("negative token must fail")
	}
}
