// Package tp models tensor-parallel LLM inference across the two sockets
// of a CPU server. The paper's 96-core experiments (Figs 14/16) show that
// naively spanning sockets regresses: interleaved data sends half of all
// accesses over UPI. Megatron-style tensor parallelism fixes the data
// placement instead of the thread placement — each socket owns a column/
// row shard of every weight matrix, streams only local memory, and the
// sockets exchange one activation-sized allreduce per matmul pair. This
// package quantifies when that turns the second socket from a liability
// (Key Finding #3) into usable bandwidth for models that overflow one
// socket's fast memory (§VI).
package tp

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// allReduceLatencyUS is the per-operation software latency of a
// two-socket allreduce (synchronization + kernel launch), independent of
// payload.
const allReduceLatencyUS = 15.0

// Run describes one tensor-parallel simulation point across Ways sockets
// of the same CPU.
type Run struct {
	CPU  hw.CPU
	Ways int // tensor-parallel degree (sockets used); 1..CPU.Sockets
	// Mem and Cluster configure each socket's local memory (per-socket
	// working sets are halved, so HBM-only placement often becomes
	// possible).
	Mem                 memsim.MemMode
	Cluster             memsim.ClusterMode
	Model               model.Config
	Batch               int
	InputLen, OutputLen int
	Weights             tensor.DType
}

// Validate reports impossible configurations.
func (r Run) Validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Ways < 1 || r.Ways > r.CPU.Sockets {
		return fmt.Errorf("tp: %d ways on a %d-socket %s", r.Ways, r.CPU.Sockets, r.CPU.Name)
	}
	if r.Batch <= 0 || r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("tp: non-positive batch/input/output")
	}
	return nil
}

// socketSetup returns the per-socket memory configuration (full local
// cores, no cross-socket traffic — TP keeps each shard local).
func (r Run) socketSetup() memsim.Config {
	return memsim.Config{CPU: r.CPU, Cores: r.CPU.CoresPerSocket,
		Mem: r.Mem, Cluster: r.Cluster}
}

// allReduceSeconds prices one allreduce of `bytes` payload across the
// sockets over UPI (ring with 2 endpoints: one exchange each way).
func (r Run) allReduceSeconds(bytes float64) float64 {
	if r.Ways == 1 {
		return 0
	}
	return bytes/(r.CPU.UPIGBs*1e9) + allReduceLatencyUS/1e6
}

// pricePass prices one forward pass: each socket executes 1/Ways of every
// weight-carrying op over its local shard, attention shards by head, and
// the sockets allreduce the hidden state twice per layer (after attention
// output and after the FFN, the Megatron pattern).
func (r Run) pricePass(ph model.Phase, seq, ctx int, bw memsim.Bandwidth, scale float64) float64 {
	ops := r.Model.Ops(ph, r.Batch, seq, ctx, r.Weights)
	ways := float64(r.Ways)
	var t float64
	for _, o := range ops {
		flops := o.FLOPs() / ways
		// Sharding narrows the per-socket GEMM's N dimension.
		n := o.N / int64(r.Ways)
		if n < 1 {
			n = 1
		}
		path := r.CPU.BestPath(o.M, n, o.K)
		compute := flops / (path.EffectiveFLOPS(o.M, n, o.K) * scale)
		mem := float64(o.WeightBytes) / ways
		if o.Attention {
			mem += float64(o.IOBytes) / ways
		} else {
			mem += float64(o.IOBytes) / ways * 0.25
		}
		memTime := mem / (bw.EffectiveGBs * 1e9)
		if memTime > compute {
			t += memTime
		} else {
			t += compute
		}
	}
	// Two allreduces of the hidden state per layer.
	rows := float64(r.Batch)
	if ph == model.Prefill {
		rows *= float64(seq)
	}
	hiddenBytes := rows * float64(r.Model.DModel) * 2
	t += 2 * float64(r.Model.Layers) * r.allReduceSeconds(hiddenBytes)
	t += r.CPU.StepOverheadMS / 1e3
	return t
}

// Simulate prices the tensor-parallel run.
func (r Run) Simulate() (metrics.Result, error) {
	if err := r.Validate(); err != nil {
		return metrics.Result{}, err
	}
	// Per-socket working set: the weight and KV shards.
	footprint := (float64(r.Model.WeightBytes(r.Weights)) +
		float64(r.Model.KVCacheBytes(r.InputLen+r.OutputLen, r.Batch, tensor.BF16))) /
		float64(r.Ways) / 1e9
	if footprint < 1 {
		footprint = 1
	}
	bw, err := r.socketSetup().Bandwidth(footprint)
	if err != nil {
		return metrics.Result{}, err
	}
	scale := r.socketSetup().ComputeScale()

	prefill := r.pricePass(model.Prefill, r.InputLen, 0, bw, scale)
	var decode float64
	for step := 1; step < r.OutputLen; step++ {
		decode += r.pricePass(model.Decode, 1, r.InputLen+step, bw, scale)
	}
	name := fmt.Sprintf("%s TP-%d", r.CPU.Name, r.Ways)
	res := metrics.New(name, r.Model.Name, r.Batch, r.InputLen, r.OutputLen, prefill, decode)
	res.ComputeSeconds = res.Latency.E2E
	return res, nil
}

// Baselines returns the two single-system reference points the TP run
// should be compared against: one socket (48 cores, spilling if the model
// overflows) and both sockets NUMA-naively (the paper's 96-core case).
func (r Run) Baselines() (oneSocket, naiveTwoSocket metrics.Result, err error) {
	one := perfmodel.CPURun{Model: r.Model,
		Setup: memsim.Config{CPU: r.CPU, Cores: r.CPU.CoresPerSocket, Mem: r.Mem, Cluster: r.Cluster},
		Batch: r.Batch, InputLen: r.InputLen, OutputLen: r.OutputLen, Weights: r.Weights}
	oneSocket, err = one.Simulate()
	if err != nil {
		return
	}
	two := one
	two.Setup.Cores = r.CPU.CoresPerSocket * r.CPU.Sockets
	naiveTwoSocket, err = two.Simulate()
	return
}
