package tp

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

func tpRun(m model.Config, ways, batch int) Run {
	return Run{CPU: hw.SPRMax9468, Ways: ways, Mem: memsim.Flat,
		Cluster: memsim.Quad, Model: m, Batch: batch,
		InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
}

func mustSim(t *testing.T, r Run) metrics.Result {
	t.Helper()
	res, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTPBeatsNaiveTwoSocket: the core claim — tensor parallelism turns
// the second socket into a win where naive 96-core execution regresses.
func TestTPBeatsNaiveTwoSocket(t *testing.T) {
	for _, m := range []model.Config{model.OPT66B, model.Llama70B} {
		r := tpRun(m, 2, 1)
		tp2 := mustSim(t, r)
		one, naive, err := r.Baselines()
		if err != nil {
			t.Fatal(err)
		}
		if tp2.Latency.E2E >= naive.Latency.E2E {
			t.Errorf("%s: TP-2 (%.2fs) must beat naive 96-core (%.2fs)",
				m.Name, tp2.Latency.E2E, naive.Latency.E2E)
		}
		if tp2.Latency.E2E >= one.Latency.E2E {
			t.Errorf("%s: TP-2 (%.2fs) must beat one socket (%.2fs) for oversized models",
				m.Name, tp2.Latency.E2E, one.Latency.E2E)
		}
		if naive.Latency.E2E <= one.Latency.E2E {
			t.Errorf("%s: naive two-socket should regress vs one socket (Fig 16)", m.Name)
		}
	}
}

// TestTPAdvantageComesFromHBM: halving the shard lets it fit HBM. For
// OPT-66B (132 GB) one socket spills to DDR; the 66 GB shard is nearly
// all-HBM, so the TP speedup must exceed 2×.
func TestTPAdvantageComesFromHBM(t *testing.T) {
	r := tpRun(model.OPT66B, 2, 1)
	tp2 := mustSim(t, r)
	one, _, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.Latency.TPOT / tp2.Latency.TPOT
	if speedup < 2.0 || speedup > 4.5 {
		t.Errorf("TP-2 decode speedup = %.2fx, want 2–4.5x (bandwidth doubling + HBM residency)", speedup)
	}
}

// TestTPSmallModelOverheadBound: for a model already HBM-resident on one
// socket, TP still helps decode (half the local streaming) but gains are
// bounded by the 2× bandwidth ceiling plus allreduce overhead.
func TestTPSmallModelOverheadBound(t *testing.T) {
	r := tpRun(model.OPT13B, 2, 1)
	tp2 := mustSim(t, r)
	one, _, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.Latency.E2E / tp2.Latency.E2E
	if speedup > 2.1 {
		t.Errorf("TP-2 speedup %.2fx exceeds the 2x resource ceiling", speedup)
	}
	if speedup < 1.0 {
		t.Errorf("TP-2 should not regress for OPT-13B (%.2fx)", speedup)
	}
}

// TestTP1MatchesSingleSocketOrder: degenerate TP-1 must be within 15 % of
// the dedicated single-socket model (same work, slightly different op
// accounting).
func TestTP1MatchesSingleSocketOrder(t *testing.T) {
	r := tpRun(model.Llama13B, 1, 4)
	tp1 := mustSim(t, r)
	one, _, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := tp1.Latency.E2E / one.Latency.E2E; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("TP-1 %.3fs vs single socket %.3fs (ratio %.2f)",
			tp1.Latency.E2E, one.Latency.E2E, ratio)
	}
}

// TestAllReducePricing: allreduce is free at TP-1 and costs latency +
// payload/UPI at TP-2.
func TestAllReducePricing(t *testing.T) {
	r1, r2 := tpRun(model.OPT13B, 1, 1), tpRun(model.OPT13B, 2, 1)
	if r1.allReduceSeconds(1e6) != 0 {
		t.Error("TP-1 allreduce must be free")
	}
	got := r2.allReduceSeconds(62.4e9) // one second of UPI payload
	if got < 1.0 || got > 1.001 {
		t.Errorf("allreduce of one UPI-second = %v, want ≈1s", got)
	}
}

func TestValidation(t *testing.T) {
	bad := tpRun(model.OPT13B, 3, 1) // only 2 sockets
	if _, err := bad.Simulate(); err == nil {
		t.Error("TP-3 on a 2-socket CPU must fail")
	}
	bad = tpRun(model.OPT13B, 0, 1)
	if _, err := bad.Simulate(); err == nil {
		t.Error("TP-0 must fail")
	}
	bad = tpRun(model.OPT13B, 2, 0)
	if _, err := bad.Simulate(); err == nil {
		t.Error("zero batch must fail")
	}
	bad = tpRun(model.Config{Name: "bad"}, 1, 1)
	if _, err := bad.Simulate(); err == nil {
		t.Error("invalid model must fail")
	}
}
