// Package trace is the serving stack's per-request span tracer. Every
// request admitted by the gateway owns a Trace; the scheduler appends one
// Span per phase it moves the request through — admission, queue wait,
// batching, prefill, per-token decode, pricing — each carrying the wall
// time, the modeled (virtual) cost when one exists, and the emulated
// hardware-counter analogs (LLC MPKI, core utilization, memory-bound
// fraction, UPI utilization) of the platform that priced the call. This is
// the paper's methodology turned into a serving primitive: instead of
// attributing a slow run to prefill vs. decode vs. memory offline
// (Figs 4-8), the attribution rides along with every live request.
//
// Traces are cheap to record and sampled at retention time: a configurable
// fraction of ok traces is kept, while errored and degraded requests are
// always kept. Retained traces land in a fixed-size ring served by
// GET /v1/traces, are optionally appended as JSONL to an export writer
// (llmperfd -trace-out), and every trace — retained or not — feeds
// per-phase latency histograms in the metrics registry.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span phase names the gateway records. Consumers should treat unknown
// names as forward-compatible additions.
const (
	PhaseAdmission = "admission" // API-side validation and admission control
	PhaseQueue     = "queue"     // submission → lane admission
	PhaseBatch     = "batch"     // joining the lane batch (carries batch size)
	PhasePrefill   = "prefill"   // prompt processing iterations
	PhaseDecode    = "decode"    // per-token decode iterations
	PhasePricing   = "pricing"   // wall time inside the cost model / engine
	PhaseHandler   = "handler"   // whole HTTP handler (API middleware)
	PhaseStalled   = "stalled"   // watchdog-cancelled iteration before requeue
	PhasePreempted = "preempted" // KV-evicted execution before requeue (recompute)
	// PhaseFirstToken spans submission to the first emitted token — the
	// wall-clock TTFT the streaming client experiences. It overlaps the
	// tiling phases (queue + batch + prefill) rather than partitioning them.
	PhaseFirstToken = "first_token"
	// Cluster-layer phases (internal/cluster). PhaseRoute spans one
	// dispatch attempt on one replica (attrs: replica, policy, attempt);
	// PhaseFailover spans the backoff between a failed attempt and the
	// retry on the next replica; PhaseHedge spans a hedged duplicate
	// dispatch (attrs: replica, won).
	PhaseRoute    = "route"
	PhaseFailover = "failover"
	PhaseHedge    = "hedge"
	// Prefix-cache phases (internal/prefixcache via govern).
	// PhaseCacheLookup spans the radix-tree probe at lane admission;
	// PhaseCacheHit is a zero-compute marker span carrying the matched
	// token count and the prefill model-seconds the hit saved.
	PhaseCacheLookup = "cache_lookup"
	PhaseCacheHit    = "cache_hit"
	// PhaseSpeculative spans one draft-assisted decode cycle (gateway
	// spec.go): k draft steps plus one fused verification pass, committing
	// the accepted run. Attrs carry k, proposed, accepted and committed.
	PhaseSpeculative = "speculative"
)

// PhaseOrder is the canonical rendering order for phase breakdowns.
var PhaseOrder = []string{PhaseAdmission, PhaseRoute, PhaseFailover,
	PhaseHedge, PhaseQueue, PhaseCacheLookup, PhaseCacheHit, PhaseBatch,
	PhasePrefill, PhaseDecode, PhaseSpeculative, PhaseFirstToken,
	PhasePreempted, PhasePricing}

// Counters are the per-span hardware-counter analogs, mirroring the
// subset of internal/counters.Report the paper's figures analyze.
type Counters struct {
	LLCMPKI             float64 `json:"llc_mpki"`
	CoreUtilization     float64 `json:"core_utilization"`
	MemoryBoundFraction float64 `json:"memory_bound_fraction"`
	UPIUtilization      float64 `json:"upi_utilization"`
}

// Span is one recorded phase of a trace.
type Span struct {
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	// ModelSeconds is the modeled (virtual-clock) cost the span charged,
	// when the phase was priced; wall time and modeled time diverge under
	// batching and timescaling.
	ModelSeconds float64           `json:"model_seconds,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Counters     *Counters         `json:"counters,omitempty"`
}

// SpanData is the argument bundle for Trace.Add.
type SpanData struct {
	Name         string
	Start, End   time.Time
	ModelSeconds float64
	Attrs        map[string]string
	Counters     *Counters
}

// Record is a finished trace in exported (JSON) form.
type Record struct {
	ID            string `json:"trace_id"`
	RequestID     string `json:"request_id,omitempty"`
	Lane          string `json:"lane,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	Status        string `json:"status"` // "ok" | "error"
	Degraded      bool   `json:"degraded,omitempty"`
	Error         string `json:"error,omitempty"`
	Sampled       bool   `json:"sampled"`
	Spans         []Span `json:"spans"`
}

// Trace accumulates the spans of one request. All methods are safe for
// concurrent use and nil-safe: a nil *Trace records nothing, so callers
// never branch on whether tracing is enabled.
type Trace struct {
	tracer *Tracer

	mu        sync.Mutex
	id        string
	requestID string
	lane      string
	start     time.Time
	sampled   bool
	degraded  bool
	errMsg    string
	spans     []Span
	finished  bool
}

// ID returns the trace identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether the trace was selected for retention at start
// (errored and degraded traces are retained regardless).
func (t *Trace) Sampled() bool {
	if t == nil {
		return false
	}
	return t.sampled
}

// SetLane records the gateway lane serving the request.
func (t *Trace) SetLane(lane string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lane = lane
	t.mu.Unlock()
}

// SetDegraded marks the request as served (at least partly) by a fallback
// cost model; degraded traces are always retained.
func (t *Trace) SetDegraded() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.degraded = true
	t.mu.Unlock()
}

// SetError records the failure that ended the request; errored traces are
// always retained.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	t.errMsg = err.Error()
	t.mu.Unlock()
}

// Add appends one span. Spans added after Finish are dropped.
func (t *Trace) Add(s SpanData) {
	if t == nil {
		return
	}
	if s.End.Before(s.Start) {
		s.End = s.Start
	}
	span := Span{
		Name:          s.Name,
		StartUnixNano: s.Start.UnixNano(),
		DurationNanos: s.End.Sub(s.Start).Nanoseconds(),
		ModelSeconds:  s.ModelSeconds,
		Attrs:         s.Attrs,
		Counters:      s.Counters,
	}
	t.mu.Lock()
	if !t.finished {
		t.spans = append(t.spans, span)
	}
	t.mu.Unlock()
}

// Event appends a zero-duration span, used for point-in-time occurrences
// such as injected faults, requeues and quarantines.
func (t *Trace) Event(name string, at time.Time, attrs map[string]string) {
	t.Add(SpanData{Name: name, Start: at, End: at, Attrs: attrs})
}

// PhaseSeconds sums wall time per span name. The tiling phases (queue,
// prefill, decode, stalled) partition the request's gateway residence;
// pricing spans overlap them.
func (t *Trace) PhaseSeconds() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, s := range t.spans {
		out[s.Name] += float64(s.DurationNanos) / 1e9
	}
	return out
}

// Finish seals the trace and hands it to the tracer: phase histograms are
// always updated; the record is retained (ring, JSONL) when the trace was
// sampled, errored or degraded. Finish is idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	rec := Record{
		ID:            t.id,
		RequestID:     t.requestID,
		Lane:          t.lane,
		StartUnixNano: t.start.UnixNano(),
		DurationNanos: time.Since(t.start).Nanoseconds(),
		Status:        "ok",
		Degraded:      t.degraded,
		Error:         t.errMsg,
		Sampled:       t.sampled,
		Spans:         t.spans,
	}
	if t.errMsg != "" {
		rec.Status = "error"
	}
	tracer := t.tracer
	t.mu.Unlock()
	if tracer != nil {
		tracer.finish(rec)
	}
}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

type ctxKey struct{}

// FormatServerTiming renders per-phase wall seconds as a Server-Timing
// header value (durations in milliseconds), canonical phases first.
func FormatServerTiming(seconds map[string]float64) string {
	var parts []string
	emit := func(name string) {
		if v, ok := seconds[name]; ok {
			parts = append(parts, fmt.Sprintf("%s;dur=%.3f", name, v*1e3))
		}
	}
	done := map[string]bool{}
	for _, name := range PhaseOrder {
		emit(name)
		done[name] = true
	}
	var rest []string
	for name := range seconds {
		if !done[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		emit(name)
	}
	return strings.Join(parts, ", ")
}

// ParseServerTiming inverts FormatServerTiming: it returns milliseconds
// per metric name, ignoring entries without a dur parameter.
func ParseServerTiming(header string) map[string]float64 {
	out := map[string]float64{}
	for _, entry := range strings.Split(header, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ";")
		name := strings.TrimSpace(fields[0])
		if name == "" {
			continue
		}
		for _, p := range fields[1:] {
			p = strings.TrimSpace(p)
			if rest, ok := strings.CutPrefix(p, "dur="); ok {
				if v, err := strconv.ParseFloat(rest, 64); err == nil {
					out[name] = v
				}
			}
		}
	}
	return out
}
