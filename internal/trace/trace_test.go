package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// finishOne starts a trace, adds one span of the given phase and seals it.
func finishOne(tr *Tracer, phase string, err error) *Trace {
	t := tr.Start("req")
	start := time.Now()
	t.Add(SpanData{Name: phase, Start: start, End: start.Add(time.Millisecond)})
	t.SetError(err)
	t.Finish()
	return t
}

func TestStrideSamplingIsExact(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.25, 0.5, 1} {
		tr := New(Config{SampleRate: rate})
		const n = 100
		var sampled int
		for i := 0; i < n; i++ {
			if tr.Start("req").Sampled() {
				sampled++
			}
		}
		if want := int(math.Floor(n * rate)); sampled != want {
			t.Errorf("rate %g: sampled %d of %d, want exactly %d", rate, sampled, n, want)
		}
	}
}

func TestErroredAndDegradedAlwaysRetained(t *testing.T) {
	tr := New(Config{SampleRate: 0})

	ok := finishOne(tr, PhaseDecode, nil)
	if _, found := tr.Get(ok.ID()); found {
		t.Error("unsampled ok trace was retained at rate 0")
	}

	failed := finishOne(tr, PhaseDecode, errors.New("boom"))
	rec, found := tr.Get(failed.ID())
	if !found {
		t.Fatal("errored trace not retained at rate 0")
	}
	if rec.Status != "error" || rec.Error == "" {
		t.Errorf("errored record %+v, want status=error with message", rec)
	}

	deg := tr.Start("req")
	deg.SetDegraded()
	deg.Finish()
	if rec, found = tr.Get(deg.ID()); !found || !rec.Degraded {
		t.Errorf("degraded trace not retained (found=%v rec=%+v)", found, rec)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 4})
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = finishOne(tr, PhaseQueue, nil).ID()
	}
	for _, id := range ids[:2] {
		if _, found := tr.Get(id); found {
			t.Errorf("evicted trace %s still resolvable", id)
		}
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d records, want 4", len(recent))
	}
	// Newest first: ids[5], ids[4], ids[3], ids[2].
	for i, rec := range recent {
		if want := ids[5-i]; rec.ID != want {
			t.Errorf("Recent[%d] = %s, want %s", i, rec.ID, want)
		}
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{SampleRate: 1, Output: &buf})
	finishOne(tr, PhasePrefill, nil)
	finishOne(tr, PhaseDecode, errors.New("boom"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if rec.ID == "" || len(rec.Spans) != 1 {
			t.Errorf("line %d: incomplete record %+v", i, rec)
		}
	}
}

func TestPhaseHistogramsInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{SampleRate: 0, Registry: reg})
	// Histograms must be fed even for traces that are not retained.
	finishOne(tr, PhaseDecode, nil)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, "trace_phase_decode_seconds") {
		t.Errorf("no decode phase histogram in exposition:\n%s", text)
	}
	if !strings.Contains(text, "trace_dropped_total 1") {
		t.Errorf("dropped counter not incremented:\n%s", text)
	}
}

func TestNilTraceAndTracerAreSafe(t *testing.T) {
	var tr *Tracer
	if tr.Start("req") != nil {
		t.Fatal("nil tracer should hand out nil traces")
	}
	var tc *Trace
	// None of these may panic.
	tc.SetLane("l")
	tc.SetDegraded()
	tc.SetError(errors.New("x"))
	tc.Add(SpanData{Name: PhaseQueue})
	tc.Event("fault", time.Now(), nil)
	tc.Finish()
	if tc.ID() != "" || tc.Sampled() || tc.PhaseSeconds() != nil {
		t.Error("nil trace leaked state")
	}
	if _, found := tr.Get("x"); found {
		t.Error("nil tracer resolved a trace")
	}
}

func TestSpansAfterFinishDropped(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	tc := tr.Start("req")
	tc.Finish()
	tc.Add(SpanData{Name: PhaseDecode, Start: time.Now(), End: time.Now()})
	if rec, _ := tr.Get(tc.ID()); len(rec.Spans) != 0 {
		t.Errorf("span added after Finish was recorded: %+v", rec.Spans)
	}
}

func TestPhaseSecondsSumsPerName(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	tc := tr.Start("req")
	base := time.Now()
	tc.Add(SpanData{Name: PhaseDecode, Start: base, End: base.Add(10 * time.Millisecond)})
	tc.Add(SpanData{Name: PhaseDecode, Start: base, End: base.Add(5 * time.Millisecond)})
	tc.Add(SpanData{Name: PhaseQueue, Start: base, End: base.Add(2 * time.Millisecond)})
	got := tc.PhaseSeconds()
	if d := got[PhaseDecode]; math.Abs(d-0.015) > 1e-9 {
		t.Errorf("decode seconds %g, want 0.015", d)
	}
	if q := got[PhaseQueue]; math.Abs(q-0.002) > 1e-9 {
		t.Errorf("queue seconds %g, want 0.002", q)
	}
}

func TestServerTimingRoundTrip(t *testing.T) {
	in := map[string]float64{
		PhaseQueue:   0.0015,
		PhasePrefill: 0.25,
		PhaseDecode:  1.5,
		"custom":     0.004,
	}
	header := FormatServerTiming(in)
	// Canonical phases must come first, in PhaseOrder.
	if !strings.HasPrefix(header, fmt.Sprintf("%s;dur=", PhaseQueue)) {
		t.Errorf("header does not start with the first present canonical phase: %q", header)
	}
	out := ParseServerTiming(header)
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %v -> %q -> %v", in, header, out)
	}
	for name, secs := range in {
		if ms := out[name]; math.Abs(ms-secs*1e3) > 0.001 {
			t.Errorf("%s: parsed %gms, want %gms", name, ms, secs*1e3)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	tc := tr.Start("req")
	ctx := NewContext(t.Context(), tc)
	if got := FromContext(ctx); got != tc {
		t.Fatal("trace lost in context round trip")
	}
	if got := FromContext(t.Context()); got != nil {
		t.Fatalf("empty context produced a trace: %v", got)
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{SampleRate: 1, Registry: reg})
	tc := finishOne(tr, PhaseDecode, nil)
	tc.Finish() // second seal must not double-retain
	var n int
	for _, rec := range tr.Recent(10) {
		if rec.ID == tc.ID() {
			n++
		}
	}
	if n != 1 {
		t.Errorf("trace retained %d times after double Finish", n)
	}
}
