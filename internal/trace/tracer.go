package trace

// tracer.go holds the process-wide side of tracing: trace-ID allocation,
// the deterministic sampler, the retention ring behind GET /v1/traces,
// the JSONL export writer, and the per-phase latency histograms exported
// through the metrics registry.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the fraction of ok traces retained, in [0, 1].
	// Errored and degraded traces are always retained. 1 keeps every
	// trace; 0 keeps only errored/degraded ones.
	SampleRate float64
	// RingSize bounds retained traces held for GET /v1/traces.
	// Default 512.
	RingSize int
	// Output, when non-nil, receives one JSON line per retained trace.
	Output io.Writer
	// Registry, when non-nil, receives per-phase latency histograms
	// (trace_phase_<phase>_seconds) and retention counters.
	Registry *metrics.Registry
}

// Tracer allocates traces and retains finished ones.
type Tracer struct {
	cfg Config

	mu      sync.Mutex
	started uint64 // sampling counter
	ring    []Record
	next    int
	filled  bool

	startedC, retainedC, droppedC *metrics.Counter
	phaseHists                    map[string]*metrics.Histogram
}

// New returns a tracer. The sample rate is clamped to [0, 1].
func New(cfg Config) *Tracer {
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	tr := &Tracer{cfg: cfg, ring: make([]Record, cfg.RingSize),
		phaseHists: map[string]*metrics.Histogram{}}
	if cfg.Registry != nil {
		tr.startedC = cfg.Registry.Counter("trace_started_total", "traces started")
		tr.retainedC = cfg.Registry.Counter("trace_retained_total", "finished traces retained in the ring (sampled, errored or degraded)")
		tr.droppedC = cfg.Registry.Counter("trace_dropped_total", "finished traces not retained (unsampled, ok)")
	}
	return tr
}

// SampleRate returns the configured retention fraction.
func (tr *Tracer) SampleRate() float64 {
	if tr == nil {
		return 0
	}
	return tr.cfg.SampleRate
}

// Start allocates a trace correlated with requestID. A nil tracer returns
// a nil trace, which records nothing.
func (tr *Tracer) Start(requestID string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.started++
	n := tr.started
	tr.mu.Unlock()
	if tr.startedC != nil {
		tr.startedC.Inc()
	}
	// Deterministic stride sampling: trace n is sampled when the
	// cumulative quota floor(n·rate) advances, so a rate of 0.1 keeps
	// exactly every 10th trace rather than a random subset.
	rate := tr.cfg.SampleRate
	sampled := rate >= 1 ||
		(rate > 0 && math.Floor(float64(n)*rate) != math.Floor(float64(n-1)*rate))
	return &Trace{
		tracer:    tr,
		id:        newID(),
		requestID: requestID,
		start:     time.Now(),
		sampled:   sampled,
	}
}

// Get returns the retained record with the given trace ID.
func (tr *Tracer) Get(id string) (Record, bool) {
	if tr == nil {
		return Record{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.ring {
		if tr.ring[i].ID == id {
			return tr.ring[i], true
		}
	}
	return Record{}, false
}

// Recent returns up to limit retained records, newest first.
func (tr *Tracer) Recent(limit int) []Record {
	if tr == nil || limit <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.next
	if tr.filled {
		n = len(tr.ring)
	}
	if limit > n {
		limit = n
	}
	out := make([]Record, 0, limit)
	for i := 0; i < limit; i++ {
		idx := tr.next - 1 - i
		if idx < 0 {
			idx += len(tr.ring)
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// finish records a sealed trace: histograms always, retention (ring and
// JSONL) when the trace was sampled, errored or degraded.
func (tr *Tracer) finish(rec Record) {
	for _, s := range rec.Spans {
		tr.observePhase(s.Name, float64(s.DurationNanos)/1e9)
	}
	keep := rec.Sampled || rec.Status == "error" || rec.Degraded
	if !keep {
		if tr.droppedC != nil {
			tr.droppedC.Inc()
		}
		return
	}
	if tr.retainedC != nil {
		tr.retainedC.Inc()
	}
	var line []byte
	if tr.cfg.Output != nil {
		line, _ = json.Marshal(rec)
	}
	tr.mu.Lock()
	tr.ring[tr.next] = rec
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.filled = true
	}
	if line != nil {
		_, _ = tr.cfg.Output.Write(append(line, '\n'))
	}
	tr.mu.Unlock()
}

// observePhase feeds the per-phase latency histogram, creating it on
// first use.
func (tr *Tracer) observePhase(phase string, seconds float64) {
	if tr.cfg.Registry == nil {
		return
	}
	tr.mu.Lock()
	h, ok := tr.phaseHists[phase]
	if !ok {
		h = tr.cfg.Registry.Histogram("trace_phase_"+sanitize(phase)+"_seconds",
			"wall seconds spent in the "+phase+" phase", metrics.LatencyBuckets())
		tr.phaseHists[phase] = h
	}
	tr.mu.Unlock()
	h.Observe(seconds)
}

// sanitize maps a phase name onto the Prometheus metric-name alphabet.
func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c + 'a' - 'A'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// newID returns a 16-hex-character trace or request identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a time-derived ID rather than panicking in the hot path.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewID exposes ID allocation for request-ID generation at the API edge.
func NewID() string { return newID() }
