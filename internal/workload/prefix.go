package workload

// prefix.go generates the prefix-sharing workloads the serving stack's
// radix KV cache is built for: multi-turn chatbot sessions whose every
// turn resends the growing conversation, and agent fleets that all carry
// the same tool preamble. Each request comes with the prefix_group
// client spec the v1 API accepts, so a load generator can replay these
// traces directly against /v1/generate and measure hit rate and prefill
// compute saved.

import "fmt"

// PrefixRequest is one request of a prefix-sharing trace: the base
// Request plus the prefix_group / prefix_tokens client spec.
type PrefixRequest struct {
	Request
	// Group is the request's prefix_group: requests with equal groups
	// share the cache for their leading SharedTokens tokens.
	Group string
	// SharedTokens is the request's prefix_tokens: how many leading
	// prompt tokens are shared content rather than a private tail.
	SharedTokens int
	// Session identifies the conversation (chat) or agent (agentic) the
	// request belongs to; requests within a session are ordered by Turn
	// and must be issued sequentially.
	Session int
	// Turn is the request's index within its session.
	Turn int
}

// ChatSessions generates a multi-turn chatbot trace: nSessions
// conversations of turnsPerSession turns, every turn resending the
// system prompt (systemTokens) plus the full history plus a fresh user
// message. Everything before the new user message is shared with the
// session's previous turn — group = the session — so a prefix cache
// turns each turn's prefill into just the new message. Arrival times are
// Poisson; per-session turn order is the replay contract.
func (g *Generator) ChatSessions(nSessions, turnsPerSession, systemTokens int) []PrefixRequest {
	var out []PrefixRequest
	ctx := make([]int, nSessions) // shared context tokens accumulated per session
	for i := range ctx {
		ctx[i] = systemTokens
	}
	var t float64
	id := 0
	for turn := 0; turn < turnsPerSession; turn++ {
		for s := 0; s < nSessions; s++ {
			user := g.sampleLen(g.MeanInputLen)
			gen := g.sampleLen(g.MeanOutputLen)
			t += g.rng.ExpFloat64() / g.ArrivalRate
			out = append(out, PrefixRequest{
				Request: Request{
					ID:             id,
					InputLen:       ctx[s] + user,
					OutputLen:      gen,
					ArrivalSeconds: t,
				},
				Group:        fmt.Sprintf("chat-%d", s),
				SharedTokens: ctx[s],
				Session:      s,
				Turn:         turn,
			})
			id++
			// The next turn's shared context is this whole exchange: the
			// prompt it sent plus the answer it got back.
			ctx[s] += user + gen
		}
	}
	return out
}

// AgentLoop generates an agentic trace: nAgents agents each running
// steps tool-use iterations, all sharing one toolTokens-token tool/system
// preamble (a single group for the whole fleet) with a private
// per-request scratchpad tail. The cache pays off across agents, not
// just turns: after any one agent prefills the preamble, every other
// request skips it.
func (g *Generator) AgentLoop(nAgents, steps, toolTokens int) []PrefixRequest {
	var out []PrefixRequest
	var t float64
	id := 0
	for step := 0; step < steps; step++ {
		for a := 0; a < nAgents; a++ {
			scratch := g.sampleLen(g.MeanInputLen)
			t += g.rng.ExpFloat64() / g.ArrivalRate
			out = append(out, PrefixRequest{
				Request: Request{
					ID:             id,
					InputLen:       toolTokens + scratch,
					OutputLen:      g.sampleLen(g.MeanOutputLen),
					ArrivalSeconds: t,
				},
				Group:        "tools",
				SharedTokens: toolTokens,
				Session:      a,
				Turn:         step,
			})
			id++
		}
	}
	return out
}

// BySession splits a prefix trace into per-session slices in turn order,
// the unit a replaying client must serialize.
func BySession(reqs []PrefixRequest) [][]PrefixRequest {
	max := -1
	for _, r := range reqs {
		if r.Session > max {
			max = r.Session
		}
	}
	out := make([][]PrefixRequest, max+1)
	for _, r := range reqs {
		out[r.Session] = append(out[r.Session], r)
	}
	return out
}
