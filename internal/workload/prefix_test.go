package workload

import "testing"

func TestChatSessionsSharedContextGrows(t *testing.T) {
	g := NewGenerator(7)
	g.MeanInputLen, g.MeanOutputLen = 64, 32
	reqs := g.ChatSessions(3, 4, 512)
	if len(reqs) != 12 {
		t.Fatalf("got %d requests, want 12", len(reqs))
	}
	sessions := BySession(reqs)
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	for s, turns := range sessions {
		if len(turns) != 4 {
			t.Fatalf("session %d has %d turns, want 4", s, len(turns))
		}
		prevShared, prevTotal := 0, 0
		for i, r := range turns {
			if r.Turn != i {
				t.Errorf("session %d: turn %d recorded as %d", s, i, r.Turn)
			}
			if r.Group != turns[0].Group {
				t.Errorf("session %d: group changed mid-session", s)
			}
			if i == 0 && r.SharedTokens != 512 {
				t.Errorf("first turn shares %d, want the 512-token system prompt", r.SharedTokens)
			}
			if r.SharedTokens >= r.InputLen {
				t.Errorf("shared %d must leave a private user message (in=%d)", r.SharedTokens, r.InputLen)
			}
			if i > 0 {
				if r.SharedTokens != prevTotal {
					t.Errorf("session %d turn %d shares %d, want previous context %d",
						s, i, r.SharedTokens, prevTotal)
				}
				if r.SharedTokens <= prevShared {
					t.Errorf("shared context must grow: %d -> %d", prevShared, r.SharedTokens)
				}
			}
			prevShared = r.SharedTokens
			prevTotal = r.InputLen + r.OutputLen
		}
	}
	// Sessions must not share groups with each other.
	if sessions[0][0].Group == sessions[1][0].Group {
		t.Error("distinct sessions must use distinct groups")
	}
	// Determinism: same seed, same trace.
	g2 := NewGenerator(7)
	g2.MeanInputLen, g2.MeanOutputLen = 64, 32
	again := g2.ChatSessions(3, 4, 512)
	for i := range reqs {
		if reqs[i] != again[i] {
			t.Fatalf("trace not deterministic at request %d", i)
		}
	}
}

func TestAgentLoopSharesOneGroup(t *testing.T) {
	g := NewGenerator(3)
	g.MeanInputLen, g.MeanOutputLen = 48, 16
	reqs := g.AgentLoop(4, 3, 1024)
	if len(reqs) != 12 {
		t.Fatalf("got %d requests, want 12", len(reqs))
	}
	var lastArrival float64
	for i, r := range reqs {
		if r.Group != "tools" {
			t.Errorf("request %d group %q, want the shared tool group", i, r.Group)
		}
		if r.SharedTokens != 1024 {
			t.Errorf("request %d shares %d, want the 1024-token preamble", i, r.SharedTokens)
		}
		if r.InputLen <= 1024 {
			t.Errorf("request %d needs a private scratchpad beyond the preamble (in=%d)", i, r.InputLen)
		}
		if r.ArrivalSeconds < lastArrival {
			t.Errorf("arrivals must be non-decreasing at %d", i)
		}
		lastArrival = r.ArrivalSeconds
	}
}
