package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace serialization: request traces round-trip through JSON so sweeps
// and serving experiments can be replayed against different platforms or
// shared between runs.

// WriteTrace serializes requests as a JSON array.
func WriteTrace(w io.Writer, reqs []Request) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reqs)
}

// ReadTrace deserializes a JSON request trace and validates it: lengths
// must be positive and arrivals sorted.
func ReadTrace(r io.Reader) ([]Request, error) {
	var reqs []Request
	if err := json.NewDecoder(r).Decode(&reqs); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	for i, req := range reqs {
		if req.InputLen < 1 || req.OutputLen < 1 {
			return nil, fmt.Errorf("workload: request %d has non-positive lengths", i)
		}
		if req.ArrivalSeconds < 0 {
			return nil, fmt.Errorf("workload: request %d has negative arrival", i)
		}
		if i > 0 && req.ArrivalSeconds < reqs[i-1].ArrivalSeconds {
			return nil, fmt.Errorf("workload: trace not sorted by arrival at %d", i)
		}
	}
	return reqs, nil
}
