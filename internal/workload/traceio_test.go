package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	want := NewGenerator(7).Trace(12)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d changed: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"zero length":     `[{"ID":0,"InputLen":0,"OutputLen":4}]`,
		"negative output": `[{"ID":0,"InputLen":4,"OutputLen":-1}]`,
		"negative time":   `[{"ID":0,"InputLen":4,"OutputLen":4,"ArrivalSeconds":-1}]`,
		"unsorted": `[{"ID":0,"InputLen":4,"OutputLen":4,"ArrivalSeconds":5},
		             {"ID":1,"InputLen":4,"OutputLen":4,"ArrivalSeconds":1}]`,
	}
	for name, body := range cases {
		if _, err := ReadTrace(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadTraceEmpty(t *testing.T) {
	got, err := ReadTrace(strings.NewReader("[]"))
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v %v", got, err)
	}
}
