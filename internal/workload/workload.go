// Package workload generates the inference workloads of the paper's
// evaluation: fixed-shape batches (input 128 / output 32 with batch sizes
// 1–32), sequence-length sweeps (§V-C), synthetic request traces for the
// serving examples, and token prompts for the functional engine.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Request is one inference request.
type Request struct {
	ID        int
	InputLen  int
	OutputLen int
	// ArrivalSeconds is the request's arrival time in a trace.
	ArrivalSeconds float64
}

// Batch is a set of requests executed together. The paper's experiments
// use homogeneous batches; heterogeneous batches are padded to the longest
// prompt, as static-batching servers do.
type Batch struct {
	Requests []Request
}

// Size returns the number of requests in the batch.
func (b Batch) Size() int { return len(b.Requests) }

// InputLen returns the padded prompt length (the maximum in the batch).
func (b Batch) InputLen() int {
	m := 0
	for _, r := range b.Requests {
		if r.InputLen > m {
			m = r.InputLen
		}
	}
	return m
}

// OutputLen returns the padded generation length.
func (b Batch) OutputLen() int {
	m := 0
	for _, r := range b.Requests {
		if r.OutputLen > m {
			m = r.OutputLen
		}
	}
	return m
}

// PaddingWaste returns the fraction of prompt tokens that are padding,
// a measure of static-batching inefficiency.
func (b Batch) PaddingWaste() float64 {
	if len(b.Requests) == 0 {
		return 0
	}
	padded := b.InputLen() * b.Size()
	var used int
	for _, r := range b.Requests {
		used += r.InputLen
	}
	return 1 - float64(used)/float64(padded)
}

// Fixed returns a homogeneous batch of n identical requests, the paper's
// standard workload shape.
func Fixed(n, inputLen, outputLen int) Batch {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, InputLen: inputLen, OutputLen: outputLen}
	}
	return Batch{Requests: reqs}
}

// LengthDist selects how request lengths are sampled around their means.
type LengthDist int

const (
	// Uniform samples lengths uniformly within ±LenJitter of the mean.
	Uniform LengthDist = iota
	// LogNormal samples heavy-tailed lengths: most requests are short
	// with a long tail of large ones, the shape of public chat traces
	// (and the regime where continuous batching and paged KV shine).
	LogNormal
)

// Generator produces randomized workloads deterministically from a seed.
type Generator struct {
	rng *rand.Rand
	// MeanInputLen and MeanOutputLen center the sampled lengths.
	MeanInputLen, MeanOutputLen int
	// LenJitter is the ± relative spread of sampled lengths (0 = fixed).
	// Under LogNormal it is the σ of the underlying normal instead.
	LenJitter float64
	// Dist selects the length distribution.
	Dist LengthDist
	// ArrivalRate is requests per second for traces.
	ArrivalRate float64
}

// NewGenerator returns a generator with the paper's default shape
// (input 128, output 32) and the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:           rand.New(rand.NewSource(seed)),
		MeanInputLen:  128,
		MeanOutputLen: 32,
		LenJitter:     0.25,
		ArrivalRate:   1,
	}
}

func (g *Generator) sampleLen(mean int) int {
	if g.LenJitter == 0 {
		return mean
	}
	var f float64
	if g.Dist == LogNormal {
		// exp(N(µ, σ)) with µ chosen so the distribution's mean is 1.
		sigma := g.LenJitter
		f = math.Exp(g.rng.NormFloat64()*sigma - sigma*sigma/2)
	} else {
		f = 1 + (g.rng.Float64()*2-1)*g.LenJitter
	}
	n := int(math.Round(float64(mean) * f))
	if n < 1 {
		n = 1
	}
	return n
}

// ChatTrace reconfigures the generator for a public-chat-like workload:
// log-normal lengths with a heavy tail (σ=0.8).
func (g *Generator) ChatTrace() *Generator {
	g.Dist = LogNormal
	g.LenJitter = 0.8
	return g
}

// Trace samples n requests with exponential inter-arrival times (a
// Poisson arrival process) and jittered lengths.
func (g *Generator) Trace(n int) []Request {
	reqs := make([]Request, n)
	var t float64
	for i := range reqs {
		t += g.rng.ExpFloat64() / g.ArrivalRate
		reqs[i] = Request{
			ID:             i,
			InputLen:       g.sampleLen(g.MeanInputLen),
			OutputLen:      g.sampleLen(g.MeanOutputLen),
			ArrivalSeconds: t,
		}
	}
	return reqs
}

// Batches greedily groups a trace into batches of at most maxBatch
// requests, preserving arrival order (static batching).
func Batches(reqs []Request, maxBatch int) []Batch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	var out []Batch
	for len(reqs) > 0 {
		n := maxBatch
		if n > len(reqs) {
			n = len(reqs)
		}
		out = append(out, Batch{Requests: append([]Request(nil), reqs[:n]...)})
		reqs = reqs[n:]
	}
	return out
}

// Prompt samples inputLen token IDs in [0, vocab) for the functional
// engine.
func (g *Generator) Prompt(inputLen, vocab int) []int {
	p := make([]int, inputLen)
	for i := range p {
		p[i] = g.rng.Intn(vocab)
	}
	return p
}

// Sweep enumerates the cross product of batch sizes and input lengths of
// a paper experiment.
type Sweep struct {
	Batches   []int
	InputLens []int
	OutputLen int
}

// Point is one sweep coordinate.
type Point struct {
	Batch, InputLen, OutputLen int
}

// Points returns the sweep's coordinates in row-major order (input length
// varying fastest).
func (s Sweep) Points() []Point {
	var pts []Point
	for _, b := range s.Batches {
		for _, in := range s.InputLens {
			pts = append(pts, Point{Batch: b, InputLen: in, OutputLen: s.OutputLen})
		}
	}
	return pts
}

// PaperDefault is the paper's standard sweep: batch 1–32, input 128,
// output 32 (§IV-A).
func PaperDefault() Sweep {
	return Sweep{Batches: []int{1, 2, 4, 8, 16, 32}, InputLens: []int{128}, OutputLen: 32}
}

// SeqLenSweep is the §V-C sensitivity sweep: input 128–1024 at a fixed
// batch size, output 32.
func SeqLenSweep(batch int) Sweep {
	return Sweep{Batches: []int{batch}, InputLens: []int{128, 256, 512, 1024}, OutputLen: 32}
}

// Validate reports empty sweeps.
func (s Sweep) Validate() error {
	if len(s.Batches) == 0 || len(s.InputLens) == 0 || s.OutputLen <= 0 {
		return fmt.Errorf("workload: empty sweep %+v", s)
	}
	return nil
}
