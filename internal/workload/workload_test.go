package workload

import (
	"testing"
	"testing/quick"
)

func TestFixedBatch(t *testing.T) {
	b := Fixed(4, 128, 32)
	if b.Size() != 4 || b.InputLen() != 128 || b.OutputLen() != 32 {
		t.Errorf("fixed batch wrong: %+v", b)
	}
	if b.PaddingWaste() != 0 {
		t.Error("homogeneous batch must have zero padding waste")
	}
}

func TestEmptyBatch(t *testing.T) {
	var b Batch
	if b.Size() != 0 || b.InputLen() != 0 || b.OutputLen() != 0 || b.PaddingWaste() != 0 {
		t.Error("empty batch accessors must be zero")
	}
}

func TestPaddingWaste(t *testing.T) {
	b := Batch{Requests: []Request{{InputLen: 100, OutputLen: 1}, {InputLen: 50, OutputLen: 1}}}
	// padded = 200, used = 150 → waste 0.25
	if w := b.PaddingWaste(); w != 0.25 {
		t.Errorf("padding waste = %v, want 0.25", w)
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := NewGenerator(7).Trace(20)
	b := NewGenerator(7).Trace(20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace must be deterministic per seed")
		}
	}
}

func TestTraceProperties(t *testing.T) {
	g := NewGenerator(1)
	g.ArrivalRate = 10
	reqs := g.Trace(100)
	prev := 0.0
	for i, r := range reqs {
		if r.ArrivalSeconds < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = r.ArrivalSeconds
		if r.InputLen < 1 || r.OutputLen < 1 {
			t.Fatal("lengths must be positive")
		}
		if r.ID != i {
			t.Fatal("IDs must be sequential")
		}
	}
	// Mean inter-arrival should be near 1/rate.
	mean := prev / float64(len(reqs))
	if mean < 0.05 || mean > 0.2 {
		t.Errorf("mean inter-arrival = %v, want ≈0.1", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGenerator(seed)
		for _, r := range g.Trace(50) {
			if r.InputLen < 96 || r.InputLen > 160 {
				return false // 128 ± 25 %
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogNormalHeavyTail(t *testing.T) {
	// The chat-trace distribution must have roughly the right mean and a
	// much heavier tail than the uniform default.
	uni := NewGenerator(9)
	chat := NewGenerator(9).ChatTrace()
	sample := func(g *Generator) (mean float64, max int) {
		var sum int
		for _, r := range g.Trace(2000) {
			sum += r.InputLen
			if r.InputLen > max {
				max = r.InputLen
			}
		}
		return float64(sum) / 2000, max
	}
	mUni, maxUni := sample(uni)
	mChat, maxChat := sample(chat)
	if mChat < 0.85*128 || mChat > 1.15*128 {
		t.Errorf("log-normal mean = %.1f, want ≈128", mChat)
	}
	if mUni < 0.9*128 || mUni > 1.1*128 {
		t.Errorf("uniform mean = %.1f, want ≈128", mUni)
	}
	if maxChat <= 2*maxUni {
		t.Errorf("log-normal tail (max %d) should far exceed uniform (max %d)",
			maxChat, maxUni)
	}
	// Lengths stay positive even deep in the left tail.
	for _, r := range chat.Trace(500) {
		if r.InputLen < 1 || r.OutputLen < 1 {
			t.Fatal("non-positive length")
		}
	}
}

func TestZeroJitter(t *testing.T) {
	g := NewGenerator(3)
	g.LenJitter = 0
	for _, r := range g.Trace(10) {
		if r.InputLen != 128 || r.OutputLen != 32 {
			t.Fatal("zero jitter must produce exact lengths")
		}
	}
}

func TestBatches(t *testing.T) {
	reqs := NewGenerator(2).Trace(10)
	bs := Batches(reqs, 4)
	if len(bs) != 3 || bs[0].Size() != 4 || bs[2].Size() != 2 {
		t.Errorf("batching wrong: %d batches", len(bs))
	}
	total := 0
	for _, b := range bs {
		total += b.Size()
	}
	if total != 10 {
		t.Error("batching lost requests")
	}
	if len(Batches(reqs, 0)) != 10 {
		t.Error("maxBatch<1 must clamp to 1")
	}
}

func TestPrompt(t *testing.T) {
	p := NewGenerator(4).Prompt(64, 97)
	if len(p) != 64 {
		t.Fatal("prompt length wrong")
	}
	for _, tok := range p {
		if tok < 0 || tok >= 97 {
			t.Fatal("token out of vocab")
		}
	}
}

func TestSweeps(t *testing.T) {
	s := PaperDefault()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	if len(pts) != 6 {
		t.Errorf("paper default sweep has %d points, want 6", len(pts))
	}
	if pts[0] != (Point{Batch: 1, InputLen: 128, OutputLen: 32}) {
		t.Errorf("first point wrong: %+v", pts[0])
	}
	seq := SeqLenSweep(16)
	if len(seq.Points()) != 4 || seq.Points()[3].InputLen != 1024 {
		t.Error("seq-len sweep wrong")
	}
	if (Sweep{}).Validate() == nil {
		t.Error("empty sweep must fail validation")
	}
}
